// Unit and property tests for HashExpressor: zero FNR for inserted subsets,
// cell-sharing semantics, plan/commit separation, and the Fh <= t/ω bound.

#include "core/hash_expressor.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "hashing/hash_provider.h"
#include "util/rng.h"

namespace habf {
namespace {

class HashExpressorTest : public ::testing::Test {
 protected:
  GlobalHashProvider provider_{7};  // cell_bits=4 addresses 7 functions
};

TEST_F(HashExpressorTest, EmptyTableQueriesFail) {
  HashExpressor he(128, 4, &provider_, 1);
  uint8_t fns[3];
  EXPECT_FALSE(he.Query("anything", fns, 3));
  EXPECT_EQ(he.num_inserted(), 0u);
  EXPECT_DOUBLE_EQ(he.FillRatio(), 0.0);
}

TEST_F(HashExpressorTest, InsertedSubsetIsRecoveredExactly) {
  HashExpressor he(256, 4, &provider_, 1);
  const uint8_t fns[] = {2, 4, 6};
  ASSERT_TRUE(he.Insert("key-1", fns, 3));
  uint8_t out[3];
  ASSERT_TRUE(he.Query("key-1", out, 3));
  // Chain order may differ from input order; compare as sets.
  EXPECT_EQ(std::multiset<uint8_t>(out, out + 3),
            (std::multiset<uint8_t>{2, 4, 6}));
}

TEST_F(HashExpressorTest, ZeroFalseNegativesOverManyInserts) {
  HashExpressor he(4096, 4, &provider_, 2);
  Xoshiro256 rng(3);
  std::vector<std::pair<std::string, std::vector<uint8_t>>> inserted;
  for (int i = 0; i < 300; ++i) {
    std::string key = "zfn-" + std::to_string(i);
    // Random distinct 3-subset of {0..6}.
    std::set<uint8_t> subset;
    while (subset.size() < 3) {
      subset.insert(static_cast<uint8_t>(rng.NextBounded(7)));
    }
    std::vector<uint8_t> fns(subset.begin(), subset.end());
    if (he.Insert(key, fns.data(), 3)) {
      inserted.emplace_back(std::move(key), std::move(fns));
    }
  }
  ASSERT_GT(inserted.size(), 50u);  // plenty must fit in 4096 cells
  for (const auto& [key, fns] : inserted) {
    uint8_t out[3];
    ASSERT_TRUE(he.Query(key, out, 3)) << key;
    EXPECT_EQ(std::multiset<uint8_t>(out, out + 3),
              std::multiset<uint8_t>(fns.begin(), fns.end()))
        << key;
  }
}

TEST_F(HashExpressorTest, PlanDoesNotMutate) {
  HashExpressor he(128, 4, &provider_, 4);
  const uint8_t fns[] = {1, 3, 5};
  const auto plan = he.Plan("planned", fns, 3);
  ASSERT_TRUE(plan.ok);
  uint8_t out[3];
  EXPECT_FALSE(he.Query("planned", out, 3));
  EXPECT_EQ(he.num_inserted(), 0u);
  he.Commit(plan);
  EXPECT_TRUE(he.Query("planned", out, 3));
  EXPECT_EQ(he.num_inserted(), 1u);
}

TEST_F(HashExpressorTest, OverlapCountsSharedCells) {
  HashExpressor he(64, 4, &provider_, 5);
  const uint8_t fns[] = {0, 2, 4};
  ASSERT_TRUE(he.Insert("first", fns, 3));
  // A fresh key in an empty region overlaps 0 cells; re-planning subsets
  // against a populated table can only have overlap in [0, k].
  const auto plan = he.Plan("second", fns, 3);
  if (plan.ok) {
    EXPECT_GE(plan.overlap, 0);
    EXPECT_LE(plan.overlap, 3);
  }
}

TEST_F(HashExpressorTest, InsertionFailsWhenTableSaturated) {
  HashExpressor he(8, 4, &provider_, 6);  // tiny table
  Xoshiro256 rng(9);
  int failures = 0;
  for (int i = 0; i < 50; ++i) {
    std::set<uint8_t> subset;
    while (subset.size() < 3) {
      subset.insert(static_cast<uint8_t>(rng.NextBounded(7)));
    }
    std::vector<uint8_t> fns(subset.begin(), subset.end());
    if (!he.Insert("sat-" + std::to_string(i), fns.data(), 3)) ++failures;
  }
  EXPECT_GT(failures, 0);
  // Every chain consumes at least one distinct (cell, function) pair, so a
  // table of 8 cells cannot hold arbitrarily many keys.
  EXPECT_LE(he.num_inserted(), 24u);
}

TEST_F(HashExpressorTest, QueryNeverReturnsOutOfRangeIndices) {
  HashExpressor he(512, 4, &provider_, 7);
  Xoshiro256 rng(11);
  for (int i = 0; i < 40; ++i) {
    std::set<uint8_t> subset;
    while (subset.size() < 3) {
      subset.insert(static_cast<uint8_t>(rng.NextBounded(7)));
    }
    std::vector<uint8_t> fns(subset.begin(), subset.end());
    he.Insert("in-" + std::to_string(i), fns.data(), 3);
  }
  for (int i = 0; i < 2000; ++i) {
    uint8_t out[3] = {255, 255, 255};
    if (he.Query("probe-" + std::to_string(i), out, 3)) {
      for (uint8_t fn : out) EXPECT_LT(fn, provider_.NumFunctions());
    }
  }
}

TEST_F(HashExpressorTest, FalsePositiveRateBoundedByLoad) {
  // §III-F: Fh <= t/ω. Use a comfortably sized table, then probe strangers.
  const size_t omega = 2048;
  HashExpressor he(omega, 4, &provider_, 8);
  Xoshiro256 rng(13);
  size_t t = 0;
  for (int i = 0; i < 120; ++i) {
    std::set<uint8_t> subset;
    while (subset.size() < 3) {
      subset.insert(static_cast<uint8_t>(rng.NextBounded(7)));
    }
    std::vector<uint8_t> fns(subset.begin(), subset.end());
    if (he.Insert("member-" + std::to_string(i), fns.data(), 3)) ++t;
  }
  size_t false_positives = 0;
  const size_t probes = 50000;
  for (size_t i = 0; i < probes; ++i) {
    uint8_t out[3];
    if (he.Query("stranger-" + std::to_string(i), out, 3)) ++false_positives;
  }
  const double fh = static_cast<double>(false_positives) / probes;
  const double bound = static_cast<double>(he.num_inserted()) / omega;
  EXPECT_LE(fh, bound * 1.5 + 0.01)
      << "Fh=" << fh << " bound=" << bound << " t=" << t;
}

class HashExpressorCellWidthSweep : public ::testing::TestWithParam<unsigned> {
};

TEST_P(HashExpressorCellWidthSweep, RoundTripAcrossCellWidths) {
  const unsigned cell_bits = GetParam();
  const size_t usable = (size_t{1} << (cell_bits - 1)) - 1;
  GlobalHashProvider provider(std::min<size_t>(usable, 22));
  HashExpressor he(1024, cell_bits, &provider, 17);
  EXPECT_EQ(he.max_function_index(), usable - 1);

  Xoshiro256 rng(cell_bits);
  const size_t k = std::min<size_t>(3, provider.NumFunctions());
  std::vector<std::pair<std::string, std::vector<uint8_t>>> inserted;
  for (int i = 0; i < 60; ++i) {
    std::set<uint8_t> subset;
    while (subset.size() < k) {
      subset.insert(
          static_cast<uint8_t>(rng.NextBounded(provider.NumFunctions())));
    }
    std::vector<uint8_t> fns(subset.begin(), subset.end());
    std::string key = "w" + std::to_string(cell_bits) + "-" +
                      std::to_string(i);
    if (he.Insert(key, fns.data(), k)) {
      inserted.emplace_back(std::move(key), std::move(fns));
    }
  }
  ASSERT_FALSE(inserted.empty());
  for (const auto& [key, fns] : inserted) {
    uint8_t out[16];
    ASSERT_TRUE(he.Query(key, out, k));
    EXPECT_EQ(std::multiset<uint8_t>(out, out + k),
              std::multiset<uint8_t>(fns.begin(), fns.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(CellWidths, HashExpressorCellWidthSweep,
                         ::testing::Values(3u, 4u, 5u, 6u));

}  // namespace
}  // namespace habf
