// Tests of the hot-swap serving layer (core/filter_store.h): snapshot
// pinning across Publish() swaps, version numbering, torn-snapshot
// detection under reader/writer hammering (the RCU guarantee: every
// Acquire() yields a completely-published filter, never a mix), and the
// end-to-end overlap scenario — queries served continuously from the
// current snapshot while BuildShardedHabfAsync rebuilds and the result is
// swapped in.

#include "core/filter_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/filter_interface.h"
#include "core/habf.h"
#include "core/sharded_filter.h"
#include "eval/metrics.h"
#include "workload/dataset.h"

namespace habf {
namespace {

/// A deliberately tear-sensitive fake filter: every slot must equal `id`.
/// If a reader could ever observe a half-swapped snapshot, some slot would
/// hold another generation's id and Consistent() would fail.
struct FakeFilter {
  explicit FakeFilter(uint64_t id) : id(id) { slots.fill(id); }

  bool Consistent() const {
    for (uint64_t slot : slots) {
      if (slot != id) return false;
    }
    return true;
  }

  uint64_t id;
  std::array<uint64_t, 64> slots;
};

TEST(FilterStoreTest, EmptyStoreAcquiresNothing) {
  FilterStore<FakeFilter> store;
  const auto snapshot = store.Acquire();
  EXPECT_EQ(snapshot.filter, nullptr);
  EXPECT_EQ(snapshot.version, 0u);
  EXPECT_EQ(store.version(), 0u);
}

TEST(FilterStoreTest, PublishInstallsAndVersions) {
  FilterStore<FakeFilter> store;
  EXPECT_EQ(store.Publish(FakeFilter(7)), 1u);
  auto snapshot = store.Acquire();
  ASSERT_NE(snapshot.filter, nullptr);
  EXPECT_EQ(snapshot.filter->id, 7u);
  EXPECT_EQ(snapshot.version, 1u);
  EXPECT_EQ(store.Publish(FakeFilter(8)), 2u);
  EXPECT_EQ(store.Acquire().filter->id, 8u);
  EXPECT_EQ(store.version(), 2u);
}

TEST(FilterStoreTest, InitialConstructorPublishesVersionOne) {
  FilterStore<FakeFilter> store(FakeFilter(3));
  EXPECT_EQ(store.Acquire().version, 1u);
  EXPECT_EQ(store.Acquire().filter->id, 3u);
}

TEST(FilterStoreTest, AcquiredSnapshotSurvivesLaterSwaps) {
  FilterStore<FakeFilter> store(FakeFilter(1));
  const auto pinned = store.Acquire();
  for (uint64_t id = 2; id <= 10; ++id) store.Publish(FakeFilter(id));
  // The pin still reads the version-1 snapshot, fully intact.
  EXPECT_EQ(pinned.filter->id, 1u);
  EXPECT_TRUE(pinned.filter->Consistent());
  EXPECT_EQ(pinned.version, 1u);
  // New acquires see the latest.
  EXPECT_EQ(store.Acquire().filter->id, 10u);
}

TEST(FilterStoreTest, HammeredReadersNeverSeeATornSnapshot) {
  FilterStore<FakeFilter> store(FakeFilter(1));
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::atomic<uint64_t> last_version_seen{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      uint64_t my_last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snapshot = store.Acquire();
        if (snapshot.filter == nullptr || !snapshot.filter->Consistent() ||
            snapshot.filter->id != snapshot.version ||
            snapshot.version < my_last_version) {
          torn.store(true);
          return;
        }
        my_last_version = snapshot.version;
        last_version_seen.store(snapshot.version,
                                std::memory_order_relaxed);
      }
    });
  }

  constexpr uint64_t kSwaps = 400;
  for (uint64_t id = 2; id <= kSwaps; ++id) {
    store.Publish(FakeFilter(id));
    if (id % 32 == 0) std::this_thread::yield();
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();

  EXPECT_FALSE(torn.load()) << "a reader observed a torn or stale-mixed "
                               "snapshot";
  EXPECT_GT(last_version_seen.load(), 1u) << "readers never saw any swap";
  EXPECT_EQ(store.Acquire().version, kSwaps);
}

TEST(FilterStoreTest, ConcurrentPublishersKeepVersionsUniqueAndMonotonic) {
  FilterStore<FakeFilter> store;
  constexpr int kPerPublisher = 200;
  std::vector<uint64_t> versions[2];
  std::thread publishers[2];
  std::atomic<bool> regressed{false};
  std::thread watcher([&store, &regressed] {
    // The monotonic-install guarantee: the acquired version never goes
    // backwards, even while two publishers race the CAS.
    uint64_t last = 0;
    for (int i = 0; i < 20000; ++i) {
      const uint64_t seen = store.Acquire().version;
      if (seen < last) {
        regressed.store(true);
        return;
      }
      last = seen;
    }
  });
  for (int p = 0; p < 2; ++p) {
    publishers[p] = std::thread([&store, &versions, p] {
      for (int i = 0; i < kPerPublisher; ++i) {
        versions[p].push_back(store.Publish(FakeFilter(0)));
      }
    });
  }
  for (auto& publisher : publishers) publisher.join();
  watcher.join();
  EXPECT_FALSE(regressed.load()) << "acquired version went backwards";

  std::vector<uint64_t> all;
  for (const auto& v : versions) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i + 1) << "versions must be exactly 1..2N, no dupes";
  }
  EXPECT_EQ(store.version(), 2 * kPerPublisher);
  // With every Publish returned, the winner of the install race is exactly
  // the newest version — an older racer can never have displaced it.
  EXPECT_EQ(store.Acquire().version, 2 * kPerPublisher);
}

// --- the end-to-end overlap scenario (acceptance criterion) -----------------

TEST(FilterStoreTest, ServesContinuouslyThroughAsyncRebuildAndSwap) {
  DatasetOptions data_options;
  data_options.num_positives = 6000;
  data_options.num_negatives = 6000;
  data_options.seed = 929292;
  const Dataset data = GenerateShallaLike(data_options);

  HabfOptions options;
  options.total_bits = 10 * data.positives.size();
  ShardedBuildOptions sharding;
  sharding.num_shards = 4;
  sharding.num_threads = 2;

  // v1 serves while v2 rebuilds. Both contain every positive key (zero
  // false negatives), so "every query batch fully positive" holds across
  // the swap — a torn snapshot or a blocked reader would break it.
  FilterStore<ShardedFilter<Habf>> store(
      BuildShardedHabf(data.positives, data.negatives, options, sharding));

  const std::vector<std::string_view> views = MakeKeyViews(data.positives);
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> queries_served{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      std::vector<uint8_t> out(views.size());
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snapshot = store.Acquire();
        const size_t positives = snapshot.filter->ContainsBatch(
            KeySpan(views.data(), views.size()), out.data());
        if (positives != views.size()) {
          failed.store(true);
          return;
        }
        queries_served.fetch_add(views.size(), std::memory_order_relaxed);
      }
    });
  }

  HabfOptions rebuild_options = options;
  rebuild_options.seed = 31;  // a genuinely different replacement filter
  BuildHandle handle = BuildShardedHabfAsync(data.positives, data.negatives,
                                             rebuild_options, sharding);
  auto rebuilt = handle.TakeResult();
  const uint64_t swapped_version = store.Publish(std::move(rebuilt));
  EXPECT_EQ(swapped_version, 2u);

  // Keep serving through and past the swap, then stop the readers.
  while (queries_served.load(std::memory_order_relaxed) <
             4 * views.size() &&
         !failed.load()) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();

  EXPECT_FALSE(failed.load())
      << "a query batch lost positives during rebuild or swap";
  EXPECT_GT(queries_served.load(), 0u);
  EXPECT_EQ(store.Acquire().version, 2u);

  // The swapped-in filter answers identically to a synchronous build of the
  // same plan.
  const auto sync = BuildShardedHabf(data.positives, data.negatives,
                                     rebuild_options, sharding);
  std::string swapped_bytes;
  store.Acquire().filter->Serialize(&swapped_bytes);
  std::string sync_bytes;
  sync.Serialize(&sync_bytes);
  EXPECT_EQ(swapped_bytes, sync_bytes);
}

}  // namespace
}  // namespace habf
