// Differential tests for the serving front end (net/server.h): every answer
// delivered over the HNP1 loopback socket must be bit-for-bit identical to
// the in-process ContainsBatch it stands in for — under both routing modes,
// while FilterStore::Publish hot-swaps snapshots beneath live traffic
// (batch coherence: each response matches ONE published snapshot exactly,
// never a mix), across N concurrent pipelining connections, and through the
// dynamic backend where wire mutations must change the in-process answers
// and vice versa.

#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/dynamic_filter.h"
#include "core/filter_store.h"
#include "core/habf.h"
#include "core/sharded_filter.h"
#include "net/client.h"
#include "net/protocol.h"
#include "util/rng.h"
#include "workload/dataset.h"

namespace habf {
namespace net {
namespace {

std::vector<std::string> MakeMembers(size_t count, const std::string& prefix) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    keys.push_back(prefix + std::to_string(i));
  }
  return keys;
}

/// A mixed member/outsider probe batch (deterministic).
std::vector<std::string> MakeProbeKeys(const std::vector<std::string>& members,
                                       size_t count, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::string> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (rng.NextBounded(2) == 0) {
      keys.push_back(members[rng.NextBounded(members.size())]);
    } else {
      keys.push_back("diff-outsider-" + std::to_string(rng.Next()));
    }
  }
  return keys;
}

std::vector<std::string_view> Views(const std::vector<std::string>& keys) {
  return std::vector<std::string_view>(keys.begin(), keys.end());
}

ShardedFilter<Habf> BuildFilter(const std::vector<std::string>& members,
                                RoutingMode routing, uint64_t salt) {
  HabfOptions options;
  options.total_bits = 1 << 16;
  ShardedBuildOptions sharding;
  sharding.num_shards = 4;
  sharding.num_threads = 2;
  sharding.routing = routing;
  sharding.salt = salt;
  return BuildShardedHabf(members, {}, options, sharding);
}

/// In-process ground truth for a key batch.
std::vector<uint8_t> InProcessAnswers(const ShardedFilter<Habf>& filter,
                                      const std::vector<std::string>& keys) {
  const std::vector<std::string_view> views = Views(keys);
  std::vector<uint8_t> answers(keys.size(), 0);
  filter.ContainsBatch(KeySpan(views.data(), views.size()), answers.data());
  return answers;
}

// --- static snapshots, both routing modes -----------------------------------

class ServerDifferentialTest : public ::testing::TestWithParam<RoutingMode> {};

TEST_P(ServerDifferentialTest, WireAnswersMatchInProcessBitForBit) {
  const std::vector<std::string> members = MakeMembers(3000, "diff-member-");
  FilterStore<ShardedFilter<Habf>> store;
  store.Publish(BuildFilter(members, GetParam(), /*salt=*/1));
  StoreBackend<ShardedFilter<Habf>> backend(&store);
  Server server(&backend, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const auto snapshot = store.Acquire();
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  for (uint64_t round = 0; round < 20; ++round) {
    const std::vector<std::string> keys =
        MakeProbeKeys(members, 64 + round, 1000 + round);
    const std::vector<uint8_t> expected =
        InProcessAnswers(*snapshot.filter, keys);
    const std::vector<std::string_view> views = Views(keys);
    std::vector<uint8_t> wire;
    ASSERT_TRUE(client.Query(KeySpan(views.data(), views.size()), &wire,
                             &error))
        << error;
    ASSERT_EQ(wire, expected) << "round " << round;  // bit-for-bit
  }
  server.Shutdown();
}

INSTANTIATE_TEST_SUITE_P(RoutingModes, ServerDifferentialTest,
                         ::testing::Values(RoutingMode::kUniform,
                                           RoutingMode::kTwoChoice),
                         [](const auto& info) {
                           return info.param == RoutingMode::kUniform
                                      ? "Uniform"
                                      : "TwoChoice";
                         });

// --- batch coherence under live hot-swap ------------------------------------

TEST(ServerHotSwapDifferential, EveryResponseMatchesExactlyOneSnapshot) {
  // Two membership generations: every wire response must equal SOME
  // published snapshot's bitmap for the probe batch — exactly, proving one
  // FilterStore pin per coalesced batch (a torn batch would mix rows from
  // two generations and match neither). ShardedFilter is move-only, so the
  // swap thread publishes from a pre-built pool, one filter per swap.
  const std::vector<std::string> members_a = MakeMembers(1200, "gen-a-");
  std::vector<std::string> members_b = members_a;
  const std::vector<std::string> extra = MakeMembers(1200, "gen-b-");
  members_b.insert(members_b.end(), extra.begin(), extra.end());

  // The probe batch mixes gen-a members (hit under both), outsiders, and
  // gen-b extras — each extra that is not a gen-a false positive flips its
  // bit between generations, so the two bitmap families differ materially.
  std::vector<std::string> probe = MakeProbeKeys(members_a, 48, 4242);
  for (size_t i = 0; i < 16; ++i) probe.push_back(extra[i * 37]);

  constexpr size_t kGenerations = 8;  // alternating A, B, A, B, ...
  std::vector<ShardedFilter<Habf>> pool;
  std::vector<std::vector<uint8_t>> allowed;  // bitmap per pool entry
  for (size_t i = 0; i < kGenerations; ++i) {
    pool.push_back(BuildFilter((i % 2 == 0) ? members_a : members_b,
                               RoutingMode::kUniform, /*salt=*/7));
    allowed.push_back(InProcessAnswers(pool.back(), probe));
  }
  ASSERT_NE(allowed[0], allowed[1]);  // the tear detector has teeth

  FilterStore<ShardedFilter<Habf>> store;
  store.Publish(std::move(pool[0]));
  StoreBackend<ShardedFilter<Habf>> backend(&store);
  Server server(&backend, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Swap in generations 1..N-2 while the client hammers; the last filter is
  // published deterministically after the race so both generations are
  // provably observed regardless of scheduling.
  std::thread swapper([&] {
    for (size_t i = 1; i + 1 < kGenerations; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      store.Publish(std::move(pool[i]));
    }
  });

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  const std::vector<std::string_view> views = Views(probe);
  auto matches_some_generation = [&](const std::vector<uint8_t>& wire) {
    for (const std::vector<uint8_t>& bitmap : allowed) {
      if (wire == bitmap) return true;
    }
    return false;
  };
  for (int round = 0; round < 300; ++round) {
    // Pipeline a few requests so coalesced batches cross swap boundaries.
    for (uint64_t id = 1; id <= 4; ++id) {
      ASSERT_TRUE(client.SendQuery(round * 4 + id,
                                   KeySpan(views.data(), views.size()),
                                   &error))
          << error;
    }
    for (uint64_t id = 1; id <= 4; ++id) {
      OwnedFrame frame;
      ASSERT_TRUE(client.ReadFrame(&frame, &error)) << error;
      ASSERT_EQ(frame.op, kOpQueryResponse);
      ASSERT_EQ(frame.request_id, static_cast<uint64_t>(round * 4 + id));
      QueryResponseView view;
      ASSERT_TRUE(ParseQueryResponsePayload(frame.payload, &view, &error))
          << error;
      ASSERT_EQ(view.key_count, probe.size());
      std::vector<uint8_t> wire(probe.size());
      for (size_t i = 0; i < probe.size(); ++i) wire[i] = view.Bit(i) ? 1 : 0;
      ASSERT_TRUE(matches_some_generation(wire))
          << "round " << round << ": response matches no published "
             "snapshot — the batch was answered from a torn mix";
    }
  }
  swapper.join();

  // Deterministic finale: the last (gen B) filter goes live, and the next
  // response must be exactly its bitmap — both generations demonstrably
  // served over the wire.
  const std::vector<uint8_t> expect_last = allowed[kGenerations - 1];
  store.Publish(std::move(pool[kGenerations - 1]));
  std::vector<uint8_t> wire;
  ASSERT_TRUE(client.Query(KeySpan(views.data(), views.size()), &wire,
                           &error))
      << error;
  EXPECT_EQ(wire, expect_last);
  server.Shutdown();
}

// --- N concurrent pipelining connections ------------------------------------

TEST(ServerConcurrencyDifferential, ConcurrentPipelinedConnectionsStayExact) {
  const std::vector<std::string> members = MakeMembers(2000, "conc-member-");
  FilterStore<ShardedFilter<Habf>> store;
  store.Publish(BuildFilter(members, RoutingMode::kTwoChoice, /*salt=*/3));
  StoreBackend<ShardedFilter<Habf>> backend(&store);
  ServerOptions options;
  options.num_workers = 3;
  Server server(&backend, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const auto snapshot = store.Acquire();
  constexpr size_t kConnections = 6;
  constexpr size_t kRequestsPerConnection = 50;
  constexpr size_t kDepth = 8;  // frames pipelined before the first read
  std::vector<std::string> failures(kConnections);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kConnections; ++c) {
    threads.emplace_back([&, c] {
      std::string err;
      BlockingClient client;
      if (!client.Connect("127.0.0.1", server.port(), &err)) {
        failures[c] = "connect: " + err;
        return;
      }
      // Per-connection deterministic batches; responses must come back in
      // exact request order with in-process-identical bitmaps.
      std::vector<std::vector<std::string>> batches;
      std::vector<std::vector<uint8_t>> expected;
      for (size_t r = 0; r < kRequestsPerConnection; ++r) {
        batches.push_back(
            MakeProbeKeys(members, 16 + (r % 17), c * 1000 + r));
        expected.push_back(InProcessAnswers(*snapshot.filter, batches.back()));
      }
      size_t next_send = 0;
      size_t next_read = 0;
      while (next_read < kRequestsPerConnection) {
        while (next_send < kRequestsPerConnection &&
               next_send - next_read < kDepth) {
          const std::vector<std::string_view> views = Views(batches[next_send]);
          if (!client.SendQuery(next_send + 1,
                                KeySpan(views.data(), views.size()), &err)) {
            failures[c] = "send: " + err;
            return;
          }
          ++next_send;
        }
        OwnedFrame frame;
        if (!client.ReadFrame(&frame, &err)) {
          failures[c] = "read: " + err;
          return;
        }
        if (frame.op != kOpQueryResponse ||
            frame.request_id != next_read + 1) {
          failures[c] = "out of order at " + std::to_string(next_read);
          return;
        }
        QueryResponseView view;
        if (!ParseQueryResponsePayload(frame.payload, &view, &err)) {
          failures[c] = "payload: " + err;
          return;
        }
        std::vector<uint8_t> wire(view.key_count);
        for (size_t i = 0; i < view.key_count; ++i) {
          wire[i] = view.Bit(i) ? 1 : 0;
        }
        if (wire != expected[next_read]) {
          failures[c] = "bitmap mismatch at request " +
                        std::to_string(next_read);
          return;
        }
        ++next_read;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t c = 0; c < kConnections; ++c) {
    EXPECT_EQ(failures[c], "") << "connection " << c;
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_GE(stats.requests_answered, kConnections * kRequestsPerConnection);
  server.Shutdown();
}

// --- dynamic backend: wire mutations vs in-process state --------------------

TEST(ServerDynamicDifferential, WireMutationsAndQueriesMatchInProcess) {
  std::vector<std::string> members = MakeMembers(1000, "dyn-member-");
  HabfOptions options;
  options.total_bits = 1 << 16;
  ShardedBuildOptions sharding;
  sharding.num_shards = 2;
  DynamicShardedHabf filter(members, {}, options, sharding);
  DynamicBackend backend(&filter);
  Server server(&backend, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;

  // Wire inserts become visible to both wire and in-process queries.
  const std::vector<std::string> inserted = MakeMembers(32, "dyn-wire-new-");
  const std::vector<std::string_view> insert_views = Views(inserted);
  ASSERT_TRUE(client.Mutate(/*insert=*/true,
                            KeySpan(insert_views.data(), insert_views.size()),
                            &error))
      << error;
  std::vector<uint8_t> wire;
  ASSERT_TRUE(client.Query(KeySpan(insert_views.data(), insert_views.size()),
                           &wire, &error))
      << error;
  for (size_t i = 0; i < inserted.size(); ++i) {
    EXPECT_EQ(wire[i], 1) << inserted[i];
    EXPECT_TRUE(filter.MightContain(inserted[i]));
  }

  // Wire removes flip the in-process answer to a definite miss.
  const std::vector<std::string_view> victim = {members[0]};
  ASSERT_TRUE(client.Mutate(/*insert=*/false,
                            KeySpan(victim.data(), victim.size()), &error))
      << error;
  ASSERT_TRUE(
      client.Query(KeySpan(victim.data(), victim.size()), &wire, &error))
      << error;
  EXPECT_EQ(wire[0], 0);
  EXPECT_FALSE(filter.MightContain(members[0]));

  // In-process mutations are visible over the wire (shared state, no wire
  // cache): the differential holds in both directions.
  filter.Insert("dyn-inproc-key");
  const std::vector<std::string_view> probe = {"dyn-inproc-key"};
  ASSERT_TRUE(
      client.Query(KeySpan(probe.data(), probe.size()), &wire, &error))
      << error;
  EXPECT_EQ(wire[0], 1);

  // Full-membership wire sweep matches ContainsBatch exactly.
  members.erase(members.begin());  // the removed victim
  const std::vector<std::string_view> sweep = Views(members);
  std::vector<uint8_t> in_process(members.size(), 0);
  filter.ContainsBatch(KeySpan(sweep.data(), sweep.size()),
                       in_process.data());
  ASSERT_TRUE(client.Query(KeySpan(sweep.data(), sweep.size()), &wire,
                           &error))
      << error;
  EXPECT_EQ(wire, in_process);
  for (const uint8_t bit : in_process) EXPECT_EQ(bit, 1);  // one-sidedness

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.keys_mutated, inserted.size() + 1);
  server.Shutdown();
}

}  // namespace
}  // namespace net
}  // namespace habf
