// Concurrent-reader stress test: after construction every query entry point
// (MightContain, ContainsBatch) is const and must be safe to call from many
// threads sharing one filter. Each thread checks its answers against a
// single-threaded baseline, so a data race that corrupts results is caught
// directly, and a TSan build of this binary has real concurrency to observe.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bloom/standard_bloom.h"
#include "bloom/xor_filter.h"
#include "core/filter_interface.h"
#include "core/habf.h"
#include "workload/dataset.h"

namespace habf {
namespace {

constexpr size_t kKeys = 3000;
constexpr size_t kThreads = 8;
constexpr int kRoundsPerThread = 5;

const Dataset& SharedData() {
  static const Dataset data = [] {
    DatasetOptions options;
    options.num_positives = kKeys;
    options.num_negatives = kKeys;
    options.seed = 1234;
    return GenerateShallaLike(options);
  }();
  return data;
}

/// Mixed query stream: all positives and all negatives.
std::vector<std::string_view> QueryKeys() {
  std::vector<std::string_view> keys;
  for (const auto& key : SharedData().positives) keys.push_back(key);
  for (const auto& wk : SharedData().negatives) keys.push_back(wk.key);
  return keys;
}

/// Runs kThreads readers over `filter`; each thread interleaves scalar and
/// batched queries (different batch sizes per thread, so block boundaries
/// differ) and compares every answer to `expected`.
template <typename Filter>
void StressConcurrentReaders(const Filter& filter,
                             const std::vector<uint8_t>& expected,
                             const std::vector<std::string_view>& keys) {
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const size_t batch_size = 16 * (t + 1) + t;  // 17, 33, 50, ...
      std::vector<uint8_t> out(batch_size);
      for (int round = 0; round < kRoundsPerThread; ++round) {
        if ((static_cast<size_t>(round) + t) % 2 == 0) {
          for (size_t base = 0; base < keys.size(); base += batch_size) {
            const size_t count = keys.size() - base < batch_size
                                     ? keys.size() - base
                                     : batch_size;
            QueryBatch(filter, KeySpan(keys.data() + base, count),
                       out.data());
            for (size_t i = 0; i < count; ++i) {
              if (out[i] != expected[base + i]) {
                mismatches.fetch_add(1, std::memory_order_relaxed);
              }
            }
          }
        } else {
          for (size_t i = 0; i < keys.size(); ++i) {
            const uint8_t hit = filter.MightContain(keys[i]) ? 1 : 0;
            if (hit != expected[i]) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

template <typename Filter>
std::vector<uint8_t> Baseline(const Filter& filter,
                              const std::vector<std::string_view>& keys) {
  std::vector<uint8_t> expected(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    expected[i] = filter.MightContain(keys[i]) ? 1 : 0;
  }
  return expected;
}

TEST(ConcurrentQueryTest, StandardBloomSharedAcrossThreads) {
  const StandardBloom filter(SharedData().positives, 10 * kKeys);
  const auto keys = QueryKeys();
  StressConcurrentReaders(filter, Baseline(filter, keys), keys);
}

TEST(ConcurrentQueryTest, XorFilterSharedAcrossThreads) {
  const auto filter = XorFilter::Build(SharedData().positives, 8);
  ASSERT_TRUE(filter.has_value());
  const auto keys = QueryKeys();
  StressConcurrentReaders(*filter, Baseline(*filter, keys), keys);
}

TEST(ConcurrentQueryTest, HabfSharedAcrossThreads) {
  HabfOptions options;
  options.total_bits = 10 * kKeys;
  const Habf filter =
      Habf::Build(SharedData().positives, SharedData().negatives, options);
  const auto keys = QueryKeys();
  StressConcurrentReaders(filter, Baseline(filter, keys), keys);
}

}  // namespace
}  // namespace habf
