#include "bloom/weighted_bloom.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eval/metrics.h"
#include "workload/dataset.h"

namespace habf {
namespace {

TEST(WeightedBloomTest, NoFalseNegatives) {
  DatasetOptions dopt;
  dopt.num_positives = 10000;
  dopt.num_negatives = 10000;
  Dataset data = GenerateShallaLike(dopt);
  AssignZipfCosts(&data, 1.0, 3);

  WeightedBloomFilter::Options options;
  options.num_bits = 10000 * 10;
  const WeightedBloomFilter wbf(data.positives, data.negatives, options);
  EXPECT_EQ(CountFalseNegatives(wbf, data.positives), 0u);
}

TEST(WeightedBloomTest, CachedHighCostKeysGetMoreHashes) {
  std::vector<std::string> positives{"pos-a", "pos-b"};
  std::vector<WeightedKey> negatives;
  for (int i = 0; i < 1000; ++i) {
    negatives.push_back({"neg-" + std::to_string(i), i < 10 ? 1000.0 : 1.0});
  }
  WeightedBloomFilter::Options options;
  options.num_bits = 1 << 16;
  options.k_base = 4;
  options.k_max = 12;
  options.cache_fraction = 0.01;  // exactly the 10 expensive keys
  const WeightedBloomFilter wbf(positives, negatives, options);
  EXPECT_EQ(wbf.cache_size(), 10u);
  EXPECT_GT(wbf.NumHashesFor("neg-0"), options.k_base);
  EXPECT_EQ(wbf.NumHashesFor("neg-999"), options.k_base);  // uncached
  EXPECT_EQ(wbf.NumHashesFor("unknown"), options.k_base);
}

TEST(WeightedBloomTest, HashCountClampedToRange) {
  std::vector<std::string> positives{"p"};
  std::vector<WeightedKey> negatives{{"huge", 1e12}, {"tiny", 1e-12}};
  WeightedBloomFilter::Options options;
  options.num_bits = 1 << 12;
  options.k_base = 4;
  options.k_max = 8;
  options.cache_fraction = 1.0;
  const WeightedBloomFilter wbf(positives, negatives, options);
  EXPECT_LE(wbf.NumHashesFor("huge"), options.k_max);
  EXPECT_GE(wbf.NumHashesFor("tiny"), 1u);
}

TEST(WeightedBloomTest, ReducesWeightedFprVsUniformTreatment) {
  DatasetOptions dopt;
  dopt.num_positives = 20000;
  dopt.num_negatives = 20000;
  Dataset data = GenerateShallaLike(dopt);
  AssignZipfCosts(&data, 1.5, 7);

  WeightedBloomFilter::Options weighted;
  weighted.num_bits = 20000 * 8;
  weighted.cache_fraction = 0.02;
  const WeightedBloomFilter wbf(data.positives, data.negatives, weighted);

  // Compare against the same structure with the cache disabled (uniform k).
  WeightedBloomFilter::Options uniform = weighted;
  uniform.cache_fraction = 0.0;
  const WeightedBloomFilter plain(data.positives, data.negatives, uniform);

  const double wfpr = MeasureWeightedFpr(wbf, data.negatives);
  const double pfpr = MeasureWeightedFpr(plain, data.negatives);
  EXPECT_LE(wfpr, pfpr * 1.05)
      << "cost-aware probing must not lose on weighted FPR";
}

TEST(WeightedBloomTest, MemoryIncludesCache) {
  std::vector<std::string> positives{"p"};
  std::vector<WeightedKey> negatives;
  for (int i = 0; i < 1000; ++i) {
    negatives.push_back({"key-" + std::to_string(i), 1.0 + i});
  }
  WeightedBloomFilter::Options options;
  options.num_bits = 1 << 12;
  options.cache_fraction = 0.5;
  const WeightedBloomFilter wbf(positives, negatives, options);
  EXPECT_GT(wbf.MemoryUsageBytes(), (size_t{1} << 12) / 8)
      << "cache bytes must be charged on top of the bit array";
}

}  // namespace
}  // namespace habf
