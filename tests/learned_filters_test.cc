#include "learned/learned_filters.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "workload/dataset.h"

namespace habf {
namespace {

Dataset Structured(size_t n, uint64_t seed = 31) {
  DatasetOptions options;
  options.num_positives = n;
  options.num_negatives = n;
  options.seed = seed;
  return GenerateShallaLike(options);
}

LearnedOptions Budget(size_t total_bits) {
  LearnedOptions options;
  options.total_bits = total_bits;
  options.train.epochs = 3;
  return options;
}

TEST(LbfTest, ZeroFalseNegatives) {
  const Dataset data = Structured(10000);
  const auto lbf =
      LearnedBloomFilter::Build(data.positives, data.negatives,
                                Budget(10000 * 10));
  EXPECT_EQ(CountFalseNegatives(lbf, data.positives), 0u);
}

TEST(LbfTest, FprWellBelowOneOnStructuredData) {
  const Dataset data = Structured(10000);
  const auto lbf = LearnedBloomFilter::Build(data.positives, data.negatives,
                                             Budget(10000 * 10));
  const double fpr = MeasureWeightedFpr(lbf, data.negatives);
  EXPECT_LT(fpr, 0.10);
}

TEST(LbfTest, MemoryWithinBudget) {
  const Dataset data = Structured(5000);
  const size_t budget = 5000 * 12;
  const auto lbf =
      LearnedBloomFilter::Build(data.positives, data.negatives, Budget(budget));
  EXPECT_LE(lbf.MemoryUsageBits(), budget + 512);
}

TEST(SlbfTest, ZeroFalseNegatives) {
  const Dataset data = Structured(10000);
  const auto slbf = SandwichedLearnedBloomFilter::Build(
      data.positives, data.negatives, Budget(10000 * 10));
  EXPECT_EQ(CountFalseNegatives(slbf, data.positives), 0u);
}

TEST(SlbfTest, PreFilterShieldsModelErrors) {
  // On random keys (model useless) the SLBF should still behave like a
  // Bloom filter thanks to the sandwich, not accept everything.
  DatasetOptions dopt;
  dopt.num_positives = 10000;
  dopt.num_negatives = 10000;
  const Dataset data = GenerateYcsbLike(dopt);
  const auto slbf = SandwichedLearnedBloomFilter::Build(
      data.positives, data.negatives, Budget(10000 * 10));
  EXPECT_EQ(CountFalseNegatives(slbf, data.positives), 0u);
  const double fpr = MeasureWeightedFpr(slbf, data.negatives);
  EXPECT_LT(fpr, 0.15);
}

TEST(AdaBfTest, ZeroFalseNegatives) {
  const Dataset data = Structured(10000);
  AdaptiveLearnedBloomFilter::AdaOptions options;
  options.total_bits = 10000 * 10;
  options.train.epochs = 3;
  const auto ada = AdaptiveLearnedBloomFilter::Build(data.positives,
                                                     data.negatives, options);
  EXPECT_EQ(CountFalseNegatives(ada, data.positives), 0u);
}

TEST(AdaBfTest, GroupsOrderedByScoreAndK) {
  const Dataset data = Structured(5000);
  AdaptiveLearnedBloomFilter::AdaOptions options;
  options.total_bits = 5000 * 10;
  options.num_groups = 4;
  options.k_max = 6;
  options.train.epochs = 2;
  const auto ada = AdaptiveLearnedBloomFilter::Build(data.positives,
                                                     data.negatives, options);
  // k must be non-increasing with the band index; the top band auto-accepts.
  size_t prev = 1000;
  for (size_t g = 0; g < 4; ++g) {
    EXPECT_LE(ada.NumHashesForGroup(g), prev);
    prev = ada.NumHashesForGroup(g);
  }
  EXPECT_EQ(ada.NumHashesForGroup(3), 0u);
  EXPECT_EQ(ada.NumHashesForGroup(0), 6u);
}

TEST(AdaBfTest, GroupAssignmentDeterministic) {
  const Dataset data = Structured(3000);
  AdaptiveLearnedBloomFilter::AdaOptions options;
  options.total_bits = 3000 * 10;
  options.train.epochs = 2;
  const auto ada = AdaptiveLearnedBloomFilter::Build(data.positives,
                                                     data.negatives, options);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "group-probe-" + std::to_string(i);
    EXPECT_EQ(ada.GroupOf(key), ada.GroupOf(key));
  }
}

TEST(LearnedFiltersTest, AllReportConstructionMemory) {
  const Dataset data = Structured(3000);
  const auto lbf = LearnedBloomFilter::Build(data.positives, data.negatives,
                                             Budget(3000 * 10));
  MemoryCounter mem;
  lbf.ReportConstructionMemory(&mem);
  EXPECT_GT(mem.TotalBytes(), 0u);
  EXPECT_GT(mem.CategoryBytes("model_weights"), 0u);
  EXPECT_GT(mem.CategoryBytes("training_scores"), 0u);
}

TEST(LearnedFiltersTest, LearnedBeatsBloomOnStructuredLoseOnRandom) {
  // The qualitative claim behind Fig. 10: learned filters shine when the key
  // schema has evident characteristics and stop shining when it does not.
  const Dataset urls = Structured(10000, 77);
  DatasetOptions dopt;
  dopt.num_positives = 10000;
  dopt.num_negatives = 10000;
  dopt.seed = 78;
  const Dataset random = GenerateYcsbLike(dopt);

  const size_t budget = 10000 * 8;
  const auto lbf_urls =
      LearnedBloomFilter::Build(urls.positives, urls.negatives, Budget(budget));
  const auto lbf_random = LearnedBloomFilter::Build(
      random.positives, random.negatives, Budget(budget));

  const double fpr_urls = MeasureWeightedFpr(lbf_urls, urls.negatives);
  const double fpr_random = MeasureWeightedFpr(lbf_random, random.negatives);
  EXPECT_LT(fpr_urls, fpr_random)
      << "the model should only help on structured keys";
}

}  // namespace
}  // namespace habf
