#!/usr/bin/env bash
# Local mirror of the tier-1 verify (and of .github/workflows/ci.yml):
# configure + build + ctest.
#
# Usage: scripts/check.sh [Release|Debug] [--sanitize|--tsan|--thread-safety|--tidy]
#   --sanitize builds into build-sanitize/ with ASan+UBSan
#   (-DHABF_SANITIZE=ON), which races/overflow-checks the concurrent
#   sharded build and pooled query fan-out paths.
#   --tsan builds into build-tsan/ with ThreadSanitizer (-DHABF_TSAN=ON)
#   and runs the concurrency suites (thread pool, sharded build/query,
#   async build handles, FilterStore hot swaps, concurrent readers) under
#   it. The two sanitizers are mutually exclusive per build tree.
#   --thread-safety builds into build-clang/ with clang++ and
#   -DHABF_THREAD_SAFETY=ON (-Werror on -Wthread-safety[-beta]), then runs
#   the `static_analysis` ctest label (wrapper runtime suite + the
#   negative-compile matrix of tests/static_analysis/). Requires clang++.
#   --tidy additionally runs clang-tidy (the curated .clang-tidy baseline)
#   over every src/ TU via the build tree's compile_commands.json.
#   Requires clang-tidy.
#
# Every mode also greps src/ for raw std synchronization primitives: all
# locking goes through util/annotated_sync.h (DESIGN.md §9) so the Clang
# thread-safety analysis sees every acquisition. The grep keeps GCC-only
# environments honest, where the annotations themselves compile to nothing.
set -euo pipefail

cd "$(dirname "$0")/.."

# --- annotated-sync policy gate (DESIGN.md §9) -------------------------------
# Raw primitives hide acquisitions from the analysis, so they are banned in
# src/ outside the wrapper header itself. Runs first: it needs no toolchain
# and catches the violation whatever mode follows.
raw_sync_pattern='std::(mutex|shared_mutex|timed_mutex|recursive_mutex|condition_variable|lock_guard|unique_lock|shared_lock|scoped_lock)'
if raw_hits=$(grep -rnE "${raw_sync_pattern}" src/ \
                --include='*.h' --include='*.cc' \
              | grep -v '^src/util/annotated_sync\.h:'); then
  echo "error: raw std synchronization primitives in src/ — use the" >&2
  echo "annotated wrappers from util/annotated_sync.h (DESIGN.md §9):" >&2
  echo "${raw_hits}" >&2
  exit 1
fi

build_type="Release"
build_dir="build"
mode="default"
run_tidy=0
extra_flags=()
for arg in "$@"; do
  case "$arg" in
    --sanitize)
      if [ "${mode}" != "default" ]; then
        echo "--sanitize/--tsan/--thread-safety are mutually exclusive" >&2
        exit 1
      fi
      build_dir="build-sanitize"
      build_type="Debug"
      mode="sanitize"
      extra_flags=(-DHABF_SANITIZE=ON)
      ;;
    --tsan)
      if [ "${mode}" != "default" ]; then
        echo "--sanitize/--tsan/--thread-safety are mutually exclusive" >&2
        exit 1
      fi
      build_dir="build-tsan"
      build_type="Debug"
      mode="tsan"
      extra_flags=(-DHABF_TSAN=ON)
      ;;
    --thread-safety)
      if [ "${mode}" != "default" ]; then
        echo "--sanitize/--tsan/--thread-safety are mutually exclusive" >&2
        exit 1
      fi
      build_dir="build-clang"
      mode="thread-safety"
      extra_flags=(-DHABF_THREAD_SAFETY=ON)
      ;;
    --tidy) run_tidy=1 ;;
    Release|Debug) build_type="$arg" ;;
    *)
      echo "usage: $0 [Release|Debug] [--sanitize|--tsan|--thread-safety] [--tidy]" >&2
      exit 1
      ;;
  esac
done

if [ "${mode}" = "thread-safety" ]; then
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "error: --thread-safety needs clang++ on PATH (thread-safety" >&2
    echo "analysis is a Clang extension; CI's static-analysis job runs it)" >&2
    exit 1
  fi
  export CC=clang CXX=clang++
fi
if [ "${run_tidy}" = 1 ] && ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: --tidy needs clang-tidy on PATH (CI's static-analysis job" >&2
  echo "runs it over compile_commands.json)" >&2
  exit 1
fi

# The +-expansion keeps `set -u` happy on bash < 4.4 when the array is empty.
cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE="${build_type}" \
  ${extra_flags[@]+"${extra_flags[@]}"}
cmake --build "${build_dir}" -j "$(nproc)"

if [ "${run_tidy}" = 1 ]; then
  # The curated .clang-tidy baseline (bugprone/performance/concurrency/
  # readability-container-size-empty, warnings as errors) over every src/
  # TU. compile_commands.json is always exported (CMakeLists.txt).
  mapfile -t tidy_sources < <(find src -name '*.cc' | sort)
  clang-tidy -p "${build_dir}" --quiet "${tidy_sources[@]}"
fi

cd "${build_dir}"
if [ "${mode}" = "thread-safety" ]; then
  # The build above already proved src/ clean under -Werror=thread-safety;
  # the label adds the wrapper runtime suite and the negative-compile
  # matrix proving the analysis still rejects violations.
  ctest --output-on-failure -j "$(nproc)" -L static_analysis
  exit 0
fi
if [ "${mode}" = "tsan" ]; then
  # TSan is ~5-20x slower, so this tree runs the suites that exercise the
  # concurrency surface instead of the full matrix (the default and ASan
  # trees cover the rest). second_deadlock_stack gives usable reports for
  # lock-order findings.
  TSAN_OPTIONS="second_deadlock_stack=1" ctest --output-on-failure \
    -j "$(nproc)" \
    -R 'ThreadPool|ShardedFilter|AsyncBuild|FilterStore|ConcurrentQuery|CliTest|DynamicFilter|AnnotatedSync|DeltaWal|CrashRecovery|Server|Protocol'
  # The skew-aware routing suite (two-choice directory, routing-mode
  # differentials, SHR2/SHRD snapshot fuzz) runs under TSan too: the
  # two-choice build shares the parallel shard pipeline.
  TSAN_OPTIONS="second_deadlock_stack=1" ctest --output-on-failure \
    -j "$(nproc)" -L skew
  # The dynamic (mutable-path) suite is the richest concurrency surface in
  # the repo: delta-tier readers racing dirty-shard compactions across the
  # FilterStore hot swap. Run the whole label under TSan.
  TSAN_OPTIONS="second_deadlock_stack=1" ctest --output-on-failure \
    -j "$(nproc)" -L dynamic
  # The serving front end (DESIGN.md §11) multiplexes connections across
  # epoll workers while Publish hot-swaps snapshots under live queries —
  # run the whole server label (protocol fuzz, loopback differentials,
  # loadgen) under TSan.
  TSAN_OPTIONS="second_deadlock_stack=1" ctest --output-on-failure \
    -j "$(nproc)" -L server
  exit 0
fi
# Explicit parallelism: temp-path races between test cases only show up when
# ctest actually runs them concurrently.
ctest --output-on-failure -j "$(nproc)"
# The CLI suite writes real files; rerun it highly parallel and repeated so
# a reintroduced shared-temp-path race fails here instead of flaking in CI.
ctest --output-on-failure -j 8 --repeat until-fail:2 -R CliTest
# The golden-fixture gate (committed legacy SHRD/SHR2/HABF snapshots must
# load bit-exact forever) runs explicitly so a format break can never hide
# behind a filtered or trimmed test run.
ctest --output-on-failure -L format_compat
if [ "${mode}" = "sanitize" ]; then
  # Explicit ASan/UBSan pass over the routing suite (including the snapshot
  # fuzz drivers, which are exactly where a missed bounds check would turn
  # into a heap overflow): redundant with the full matrix above, but the
  # label keeps the skew surface covered even if the full run is trimmed.
  ctest --output-on-failure -j "$(nproc)" -L skew
  # Same for the dynamic label: the counting-bloom clamp and the delta-tier
  # compaction paths are exactly where an off-by-one would become a
  # container-overflow or use-after-publish finding.
  ctest --output-on-failure -j "$(nproc)" -L dynamic
  # The annotated-wrapper suite under ASan: RAII release on exception
  # unwinds, condvar timed waits, shared/exclusive handoff.
  ctest --output-on-failure -j "$(nproc)" -L static_analysis
  # The format_compat gate under ASan: the legacy readers parse committed
  # bytes, so a bounds slip here is a heap overflow on attacker-shaped
  # input, not just a wrong answer.
  ctest --output-on-failure -L format_compat
  # The server label under ASan/UBSan: the frame decoder and payload
  # parsers consume attacker-controlled bytes off the wire, so the fuzz
  # suites run where a missed length check becomes a heap overflow report
  # instead of a silent wrong answer.
  ctest --output-on-failure -j "$(nproc)" -L server
fi
