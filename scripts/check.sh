#!/usr/bin/env bash
# Local mirror of the tier-1 verify (and of .github/workflows/ci.yml):
# configure + build + ctest. Usage: scripts/check.sh [Release|Debug]
set -euo pipefail

cd "$(dirname "$0")/.."
build_type="${1:-Release}"

cmake -B build -S . -DCMAKE_BUILD_TYPE="${build_type}"
cmake --build build -j "$(nproc)"
cd build
# Explicit parallelism: temp-path races between test cases only show up when
# ctest actually runs them concurrently.
ctest --output-on-failure -j "$(nproc)"
# The CLI suite writes real files; rerun it highly parallel and repeated so
# a reintroduced shared-temp-path race fails here instead of flaking in CI.
ctest --output-on-failure -j 8 --repeat until-fail:2 -R CliTest
