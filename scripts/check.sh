#!/usr/bin/env bash
# Local mirror of the tier-1 verify (and of .github/workflows/ci.yml):
# configure + build + ctest.
#
# Usage: scripts/check.sh [Release|Debug] [--sanitize]
#   --sanitize builds into build-sanitize/ with ASan+UBSan
#   (-DHABF_SANITIZE=ON), which races/overflow-checks the concurrent
#   sharded build and pooled query fan-out paths.
set -euo pipefail

cd "$(dirname "$0")/.."
build_type="Release"
build_dir="build"
sanitize_flags=()
for arg in "$@"; do
  case "$arg" in
    --sanitize)
      build_dir="build-sanitize"
      build_type="Debug"
      sanitize_flags=(-DHABF_SANITIZE=ON)
      ;;
    Release|Debug) build_type="$arg" ;;
    *) echo "usage: $0 [Release|Debug] [--sanitize]" >&2; exit 1 ;;
  esac
done

# The +-expansion keeps `set -u` happy on bash < 4.4 when the array is empty.
cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE="${build_type}" \
  ${sanitize_flags[@]+"${sanitize_flags[@]}"}
cmake --build "${build_dir}" -j "$(nproc)"
cd "${build_dir}"
# Explicit parallelism: temp-path races between test cases only show up when
# ctest actually runs them concurrently.
ctest --output-on-failure -j "$(nproc)"
# The CLI suite writes real files; rerun it highly parallel and repeated so
# a reintroduced shared-temp-path race fails here instead of flaking in CI.
ctest --output-on-failure -j 8 --repeat until-fail:2 -R CliTest
