#!/usr/bin/env bash
# Local mirror of the tier-1 verify (and of .github/workflows/ci.yml):
# configure + build + ctest. Usage: scripts/check.sh [Release|Debug]
set -euo pipefail

cd "$(dirname "$0")/.."
build_type="${1:-Release}"

cmake -B build -S . -DCMAKE_BUILD_TYPE="${build_type}"
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"
