#!/usr/bin/env bash
# Local mirror of the tier-1 verify (and of .github/workflows/ci.yml):
# configure + build + ctest.
#
# Usage: scripts/check.sh [Release|Debug] [--sanitize|--tsan]
#   --sanitize builds into build-sanitize/ with ASan+UBSan
#   (-DHABF_SANITIZE=ON), which races/overflow-checks the concurrent
#   sharded build and pooled query fan-out paths.
#   --tsan builds into build-tsan/ with ThreadSanitizer (-DHABF_TSAN=ON)
#   and runs the concurrency suites (thread pool, sharded build/query,
#   async build handles, FilterStore hot swaps, concurrent readers) under
#   it. The two sanitizers are mutually exclusive per build tree.
set -euo pipefail

cd "$(dirname "$0")/.."
build_type="Release"
build_dir="build"
mode="default"
sanitize_flags=()
for arg in "$@"; do
  case "$arg" in
    --sanitize)
      if [ "${mode}" != "default" ]; then
        echo "--sanitize and --tsan are mutually exclusive" >&2; exit 1
      fi
      build_dir="build-sanitize"
      build_type="Debug"
      mode="sanitize"
      sanitize_flags=(-DHABF_SANITIZE=ON)
      ;;
    --tsan)
      if [ "${mode}" != "default" ]; then
        echo "--sanitize and --tsan are mutually exclusive" >&2; exit 1
      fi
      build_dir="build-tsan"
      build_type="Debug"
      mode="tsan"
      sanitize_flags=(-DHABF_TSAN=ON)
      ;;
    Release|Debug) build_type="$arg" ;;
    *) echo "usage: $0 [Release|Debug] [--sanitize|--tsan]" >&2; exit 1 ;;
  esac
done

# The +-expansion keeps `set -u` happy on bash < 4.4 when the array is empty.
cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE="${build_type}" \
  ${sanitize_flags[@]+"${sanitize_flags[@]}"}
cmake --build "${build_dir}" -j "$(nproc)"
cd "${build_dir}"
if [ "${mode}" = "tsan" ]; then
  # TSan is ~5-20x slower, so this tree runs the suites that exercise the
  # concurrency surface instead of the full matrix (the default and ASan
  # trees cover the rest). second_deadlock_stack gives usable reports for
  # lock-order findings.
  TSAN_OPTIONS="second_deadlock_stack=1" ctest --output-on-failure \
    -j "$(nproc)" \
    -R 'ThreadPool|ShardedFilter|AsyncBuild|FilterStore|ConcurrentQuery|CliTest|DynamicFilter'
  # The skew-aware routing suite (two-choice directory, routing-mode
  # differentials, SHR2/SHRD snapshot fuzz) runs under TSan too: the
  # two-choice build shares the parallel shard pipeline.
  TSAN_OPTIONS="second_deadlock_stack=1" ctest --output-on-failure \
    -j "$(nproc)" -L skew
  # The dynamic (mutable-path) suite is the richest concurrency surface in
  # the repo: delta-tier readers racing dirty-shard compactions across the
  # FilterStore hot swap. Run the whole label under TSan.
  TSAN_OPTIONS="second_deadlock_stack=1" ctest --output-on-failure \
    -j "$(nproc)" -L dynamic
  exit 0
fi
# Explicit parallelism: temp-path races between test cases only show up when
# ctest actually runs them concurrently.
ctest --output-on-failure -j "$(nproc)"
# The CLI suite writes real files; rerun it highly parallel and repeated so
# a reintroduced shared-temp-path race fails here instead of flaking in CI.
ctest --output-on-failure -j 8 --repeat until-fail:2 -R CliTest
if [ "${mode}" = "sanitize" ]; then
  # Explicit ASan/UBSan pass over the routing suite (including the snapshot
  # fuzz drivers, which are exactly where a missed bounds check would turn
  # into a heap overflow): redundant with the full matrix above, but the
  # label keeps the skew surface covered even if the full run is trimmed.
  ctest --output-on-failure -j "$(nproc)" -L skew
  # Same for the dynamic label: the counting-bloom clamp and the delta-tier
  # compaction paths are exactly where an off-by-one would become a
  # container-overflow or use-after-publish finding.
  ctest --output-on-failure -j "$(nproc)" -L dynamic
fi
