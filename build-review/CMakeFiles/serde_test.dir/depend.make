# Empty dependencies file for serde_test.
# This may be replaced when dependencies are built.
