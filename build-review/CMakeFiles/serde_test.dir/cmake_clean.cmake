file(REMOVE_RECURSE
  "CMakeFiles/serde_test.dir/tests/serde_test.cc.o"
  "CMakeFiles/serde_test.dir/tests/serde_test.cc.o.d"
  "serde_test"
  "serde_test.pdb"
  "serde_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
