# Empty dependencies file for sharded_filter_test.
# This may be replaced when dependencies are built.
