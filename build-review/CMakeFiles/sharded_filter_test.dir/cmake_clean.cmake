file(REMOVE_RECURSE
  "CMakeFiles/sharded_filter_test.dir/tests/sharded_filter_test.cc.o"
  "CMakeFiles/sharded_filter_test.dir/tests/sharded_filter_test.cc.o.d"
  "sharded_filter_test"
  "sharded_filter_test.pdb"
  "sharded_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
