file(REMOVE_RECURSE
  "CMakeFiles/cdn_cache.dir/examples/cdn_cache.cpp.o"
  "CMakeFiles/cdn_cache.dir/examples/cdn_cache.cpp.o.d"
  "cdn_cache"
  "cdn_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
