# Empty dependencies file for cdn_cache.
# This may be replaced when dependencies are built.
