file(REMOVE_RECURSE
  "CMakeFiles/hash_avalanche_test.dir/tests/hash_avalanche_test.cc.o"
  "CMakeFiles/hash_avalanche_test.dir/tests/hash_avalanche_test.cc.o.d"
  "hash_avalanche_test"
  "hash_avalanche_test.pdb"
  "hash_avalanche_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_avalanche_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
