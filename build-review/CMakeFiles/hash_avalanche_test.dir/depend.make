# Empty dependencies file for hash_avalanche_test.
# This may be replaced when dependencies are built.
