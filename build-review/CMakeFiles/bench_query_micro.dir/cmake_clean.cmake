file(REMOVE_RECURSE
  "CMakeFiles/bench_query_micro.dir/bench/bench_query_micro.cc.o"
  "CMakeFiles/bench_query_micro.dir/bench/bench_query_micro.cc.o.d"
  "bench_query_micro"
  "bench_query_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
