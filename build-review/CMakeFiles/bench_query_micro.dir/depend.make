# Empty dependencies file for bench_query_micro.
# This may be replaced when dependencies are built.
