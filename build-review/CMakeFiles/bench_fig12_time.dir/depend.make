# Empty dependencies file for bench_fig12_time.
# This may be replaced when dependencies are built.
