file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_time.dir/bench/bench_fig12_time.cc.o"
  "CMakeFiles/bench_fig12_time.dir/bench/bench_fig12_time.cc.o.d"
  "bench_fig12_time"
  "bench_fig12_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
