file(REMOVE_RECURSE
  "CMakeFiles/snapshot_fuzz_test.dir/tests/snapshot_fuzz_test.cc.o"
  "CMakeFiles/snapshot_fuzz_test.dir/tests/snapshot_fuzz_test.cc.o.d"
  "snapshot_fuzz_test"
  "snapshot_fuzz_test.pdb"
  "snapshot_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
