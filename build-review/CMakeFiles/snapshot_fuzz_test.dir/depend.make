# Empty dependencies file for snapshot_fuzz_test.
# This may be replaced when dependencies are built.
