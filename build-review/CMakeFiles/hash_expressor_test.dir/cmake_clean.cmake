file(REMOVE_RECURSE
  "CMakeFiles/hash_expressor_test.dir/tests/hash_expressor_test.cc.o"
  "CMakeFiles/hash_expressor_test.dir/tests/hash_expressor_test.cc.o.d"
  "hash_expressor_test"
  "hash_expressor_test.pdb"
  "hash_expressor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_expressor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
