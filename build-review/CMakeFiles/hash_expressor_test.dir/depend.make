# Empty dependencies file for hash_expressor_test.
# This may be replaced when dependencies are built.
