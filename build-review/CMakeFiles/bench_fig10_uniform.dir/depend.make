# Empty dependencies file for bench_fig10_uniform.
# This may be replaced when dependencies are built.
