file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_uniform.dir/bench/bench_fig10_uniform.cc.o"
  "CMakeFiles/bench_fig10_uniform.dir/bench/bench_fig10_uniform.cc.o.d"
  "bench_fig10_uniform"
  "bench_fig10_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
