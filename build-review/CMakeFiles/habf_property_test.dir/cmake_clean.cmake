file(REMOVE_RECURSE
  "CMakeFiles/habf_property_test.dir/tests/habf_property_test.cc.o"
  "CMakeFiles/habf_property_test.dir/tests/habf_property_test.cc.o.d"
  "habf_property_test"
  "habf_property_test.pdb"
  "habf_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/habf_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
