# Empty dependencies file for habf_property_test.
# This may be replaced when dependencies are built.
