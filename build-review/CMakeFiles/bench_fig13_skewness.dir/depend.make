# Empty dependencies file for bench_fig13_skewness.
# This may be replaced when dependencies are built.
