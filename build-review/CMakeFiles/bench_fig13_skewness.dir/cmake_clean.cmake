file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_skewness.dir/bench/bench_fig13_skewness.cc.o"
  "CMakeFiles/bench_fig13_skewness.dir/bench/bench_fig13_skewness.cc.o.d"
  "bench_fig13_skewness"
  "bench_fig13_skewness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_skewness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
