file(REMOVE_RECURSE
  "CMakeFiles/async_build_test.dir/tests/async_build_test.cc.o"
  "CMakeFiles/async_build_test.dir/tests/async_build_test.cc.o.d"
  "async_build_test"
  "async_build_test.pdb"
  "async_build_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_build_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
