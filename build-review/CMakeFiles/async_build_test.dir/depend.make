# Empty dependencies file for async_build_test.
# This may be replaced when dependencies are built.
