# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for async_build_test.
