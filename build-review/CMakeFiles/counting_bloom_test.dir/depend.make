# Empty dependencies file for counting_bloom_test.
# This may be replaced when dependencies are built.
