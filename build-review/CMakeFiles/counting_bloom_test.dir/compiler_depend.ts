# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for counting_bloom_test.
