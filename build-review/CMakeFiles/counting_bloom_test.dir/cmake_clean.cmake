file(REMOVE_RECURSE
  "CMakeFiles/counting_bloom_test.dir/tests/counting_bloom_test.cc.o"
  "CMakeFiles/counting_bloom_test.dir/tests/counting_bloom_test.cc.o.d"
  "counting_bloom_test"
  "counting_bloom_test.pdb"
  "counting_bloom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counting_bloom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
