# Empty dependencies file for classifier_test.
# This may be replaced when dependencies are built.
