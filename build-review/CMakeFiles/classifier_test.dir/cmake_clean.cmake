file(REMOVE_RECURSE
  "CMakeFiles/classifier_test.dir/tests/classifier_test.cc.o"
  "CMakeFiles/classifier_test.dir/tests/classifier_test.cc.o.d"
  "classifier_test"
  "classifier_test.pdb"
  "classifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
