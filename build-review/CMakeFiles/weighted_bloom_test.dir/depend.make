# Empty dependencies file for weighted_bloom_test.
# This may be replaced when dependencies are built.
