# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for weighted_bloom_test.
