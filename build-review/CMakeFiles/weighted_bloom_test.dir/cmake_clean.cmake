file(REMOVE_RECURSE
  "CMakeFiles/weighted_bloom_test.dir/tests/weighted_bloom_test.cc.o"
  "CMakeFiles/weighted_bloom_test.dir/tests/weighted_bloom_test.cc.o.d"
  "weighted_bloom_test"
  "weighted_bloom_test.pdb"
  "weighted_bloom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_bloom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
