# Empty dependencies file for hash_provider_test.
# This may be replaced when dependencies are built.
