file(REMOVE_RECURSE
  "CMakeFiles/hash_provider_test.dir/tests/hash_provider_test.cc.o"
  "CMakeFiles/hash_provider_test.dir/tests/hash_provider_test.cc.o.d"
  "hash_provider_test"
  "hash_provider_test.pdb"
  "hash_provider_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_provider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
