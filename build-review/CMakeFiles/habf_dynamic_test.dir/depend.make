# Empty dependencies file for habf_dynamic_test.
# This may be replaced when dependencies are built.
