file(REMOVE_RECURSE
  "CMakeFiles/habf_dynamic_test.dir/tests/habf_dynamic_test.cc.o"
  "CMakeFiles/habf_dynamic_test.dir/tests/habf_dynamic_test.cc.o.d"
  "habf_dynamic_test"
  "habf_dynamic_test.pdb"
  "habf_dynamic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/habf_dynamic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
