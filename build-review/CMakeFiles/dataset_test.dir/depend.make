# Empty dependencies file for dataset_test.
# This may be replaced when dependencies are built.
