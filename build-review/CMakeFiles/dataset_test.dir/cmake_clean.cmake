file(REMOVE_RECURSE
  "CMakeFiles/dataset_test.dir/tests/dataset_test.cc.o"
  "CMakeFiles/dataset_test.dir/tests/dataset_test.cc.o.d"
  "dataset_test"
  "dataset_test.pdb"
  "dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
