file(REMOVE_RECURSE
  "CMakeFiles/rng_zipf_test.dir/tests/rng_zipf_test.cc.o"
  "CMakeFiles/rng_zipf_test.dir/tests/rng_zipf_test.cc.o.d"
  "rng_zipf_test"
  "rng_zipf_test.pdb"
  "rng_zipf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rng_zipf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
