# Empty dependencies file for rng_zipf_test.
# This may be replaced when dependencies are built.
