# Empty dependencies file for bloom_filter_test.
# This may be replaced when dependencies are built.
