file(REMOVE_RECURSE
  "CMakeFiles/bloom_filter_test.dir/tests/bloom_filter_test.cc.o"
  "CMakeFiles/bloom_filter_test.dir/tests/bloom_filter_test.cc.o.d"
  "bloom_filter_test"
  "bloom_filter_test.pdb"
  "bloom_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bloom_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
