# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bloom_filter_test.
