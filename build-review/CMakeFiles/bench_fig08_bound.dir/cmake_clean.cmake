file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_bound.dir/bench/bench_fig08_bound.cc.o"
  "CMakeFiles/bench_fig08_bound.dir/bench/bench_fig08_bound.cc.o.d"
  "bench_fig08_bound"
  "bench_fig08_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
