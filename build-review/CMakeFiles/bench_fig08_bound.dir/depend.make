# Empty dependencies file for bench_fig08_bound.
# This may be replaced when dependencies are built.
