# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for learned_filters_test.
