file(REMOVE_RECURSE
  "CMakeFiles/learned_filters_test.dir/tests/learned_filters_test.cc.o"
  "CMakeFiles/learned_filters_test.dir/tests/learned_filters_test.cc.o.d"
  "learned_filters_test"
  "learned_filters_test.pdb"
  "learned_filters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_filters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
