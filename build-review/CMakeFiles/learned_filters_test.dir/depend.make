# Empty dependencies file for learned_filters_test.
# This may be replaced when dependencies are built.
