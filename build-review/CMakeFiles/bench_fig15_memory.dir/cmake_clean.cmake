file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_memory.dir/bench/bench_fig15_memory.cc.o"
  "CMakeFiles/bench_fig15_memory.dir/bench/bench_fig15_memory.cc.o.d"
  "bench_fig15_memory"
  "bench_fig15_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
