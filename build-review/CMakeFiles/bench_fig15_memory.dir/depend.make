# Empty dependencies file for bench_fig15_memory.
# This may be replaced when dependencies are built.
