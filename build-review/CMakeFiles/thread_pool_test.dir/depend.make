# Empty dependencies file for thread_pool_test.
# This may be replaced when dependencies are built.
