file(REMOVE_RECURSE
  "CMakeFiles/thread_pool_test.dir/tests/thread_pool_test.cc.o"
  "CMakeFiles/thread_pool_test.dir/tests/thread_pool_test.cc.o.d"
  "thread_pool_test"
  "thread_pool_test.pdb"
  "thread_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
