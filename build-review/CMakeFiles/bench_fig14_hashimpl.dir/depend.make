# Empty dependencies file for bench_fig14_hashimpl.
# This may be replaced when dependencies are built.
