file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_hashimpl.dir/bench/bench_fig14_hashimpl.cc.o"
  "CMakeFiles/bench_fig14_hashimpl.dir/bench/bench_fig14_hashimpl.cc.o.d"
  "bench_fig14_hashimpl"
  "bench_fig14_hashimpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_hashimpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
