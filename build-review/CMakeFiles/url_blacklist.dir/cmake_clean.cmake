file(REMOVE_RECURSE
  "CMakeFiles/url_blacklist.dir/examples/url_blacklist.cpp.o"
  "CMakeFiles/url_blacklist.dir/examples/url_blacklist.cpp.o.d"
  "url_blacklist"
  "url_blacklist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/url_blacklist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
