# Empty dependencies file for url_blacklist.
# This may be replaced when dependencies are built.
