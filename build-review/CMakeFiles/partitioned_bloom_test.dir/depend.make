# Empty dependencies file for partitioned_bloom_test.
# This may be replaced when dependencies are built.
