file(REMOVE_RECURSE
  "CMakeFiles/partitioned_bloom_test.dir/tests/partitioned_bloom_test.cc.o"
  "CMakeFiles/partitioned_bloom_test.dir/tests/partitioned_bloom_test.cc.o.d"
  "partitioned_bloom_test"
  "partitioned_bloom_test.pdb"
  "partitioned_bloom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_bloom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
