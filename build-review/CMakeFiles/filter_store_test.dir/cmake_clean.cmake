file(REMOVE_RECURSE
  "CMakeFiles/filter_store_test.dir/tests/filter_store_test.cc.o"
  "CMakeFiles/filter_store_test.dir/tests/filter_store_test.cc.o.d"
  "filter_store_test"
  "filter_store_test.pdb"
  "filter_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
