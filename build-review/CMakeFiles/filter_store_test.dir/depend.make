# Empty dependencies file for filter_store_test.
# This may be replaced when dependencies are built.
