file(REMOVE_RECURSE
  "CMakeFiles/habf_tool.dir/src/tools/habf_tool.cc.o"
  "CMakeFiles/habf_tool.dir/src/tools/habf_tool.cc.o.d"
  "habf_tool"
  "habf_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/habf_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
