# Empty dependencies file for habf_tool.
# This may be replaced when dependencies are built.
