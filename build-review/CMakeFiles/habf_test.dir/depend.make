# Empty dependencies file for habf_test.
# This may be replaced when dependencies are built.
