file(REMOVE_RECURSE
  "CMakeFiles/habf_test.dir/tests/habf_test.cc.o"
  "CMakeFiles/habf_test.dir/tests/habf_test.cc.o.d"
  "habf_test"
  "habf_test.pdb"
  "habf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/habf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
