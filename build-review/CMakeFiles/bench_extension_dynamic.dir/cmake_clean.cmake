file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_dynamic.dir/bench/bench_extension_dynamic.cc.o"
  "CMakeFiles/bench_extension_dynamic.dir/bench/bench_extension_dynamic.cc.o.d"
  "bench_extension_dynamic"
  "bench_extension_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
