# Empty dependencies file for bench_extension_dynamic.
# This may be replaced when dependencies are built.
