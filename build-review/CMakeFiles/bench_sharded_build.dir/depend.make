# Empty dependencies file for bench_sharded_build.
# This may be replaced when dependencies are built.
