file(REMOVE_RECURSE
  "CMakeFiles/bench_sharded_build.dir/bench/bench_sharded_build.cc.o"
  "CMakeFiles/bench_sharded_build.dir/bench/bench_sharded_build.cc.o.d"
  "bench_sharded_build"
  "bench_sharded_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sharded_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
