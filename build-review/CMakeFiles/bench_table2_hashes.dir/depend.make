# Empty dependencies file for bench_table2_hashes.
# This may be replaced when dependencies are built.
