file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_hashes.dir/bench/bench_table2_hashes.cc.o"
  "CMakeFiles/bench_table2_hashes.dir/bench/bench_table2_hashes.cc.o.d"
  "bench_table2_hashes"
  "bench_table2_hashes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hashes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
