# Empty dependencies file for bitvector_test.
# This may be replaced when dependencies are built.
