file(REMOVE_RECURSE
  "CMakeFiles/bitvector_test.dir/tests/bitvector_test.cc.o"
  "CMakeFiles/bitvector_test.dir/tests/bitvector_test.cc.o.d"
  "bitvector_test"
  "bitvector_test.pdb"
  "bitvector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitvector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
