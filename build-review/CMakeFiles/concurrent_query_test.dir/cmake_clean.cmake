file(REMOVE_RECURSE
  "CMakeFiles/concurrent_query_test.dir/tests/concurrent_query_test.cc.o"
  "CMakeFiles/concurrent_query_test.dir/tests/concurrent_query_test.cc.o.d"
  "concurrent_query_test"
  "concurrent_query_test.pdb"
  "concurrent_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
