# Empty dependencies file for concurrent_query_test.
# This may be replaced when dependencies are built.
