# Empty dependencies file for kv_store.
# This may be replaced when dependencies are built.
