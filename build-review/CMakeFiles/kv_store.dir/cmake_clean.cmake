file(REMOVE_RECURSE
  "CMakeFiles/kv_store.dir/examples/kv_store.cpp.o"
  "CMakeFiles/kv_store.dir/examples/kv_store.cpp.o.d"
  "kv_store"
  "kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
