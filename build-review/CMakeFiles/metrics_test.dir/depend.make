# Empty dependencies file for metrics_test.
# This may be replaced when dependencies are built.
