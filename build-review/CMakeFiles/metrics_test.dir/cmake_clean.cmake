file(REMOVE_RECURSE
  "CMakeFiles/metrics_test.dir/tests/metrics_test.cc.o"
  "CMakeFiles/metrics_test.dir/tests/metrics_test.cc.o.d"
  "metrics_test"
  "metrics_test.pdb"
  "metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
