file(REMOVE_RECURSE
  "CMakeFiles/hashing_test.dir/tests/hashing_test.cc.o"
  "CMakeFiles/hashing_test.dir/tests/hashing_test.cc.o.d"
  "hashing_test"
  "hashing_test.pdb"
  "hashing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
