# Empty dependencies file for hashing_test.
# This may be replaced when dependencies are built.
