# Empty dependencies file for filter_interface_test.
# This may be replaced when dependencies are built.
