file(REMOVE_RECURSE
  "CMakeFiles/filter_interface_test.dir/tests/filter_interface_test.cc.o"
  "CMakeFiles/filter_interface_test.dir/tests/filter_interface_test.cc.o.d"
  "filter_interface_test"
  "filter_interface_test.pdb"
  "filter_interface_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_interface_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
