# Empty dependencies file for fuzz_differential_test.
# This may be replaced when dependencies are built.
