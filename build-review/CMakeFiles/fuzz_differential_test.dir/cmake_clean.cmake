file(REMOVE_RECURSE
  "CMakeFiles/fuzz_differential_test.dir/tests/fuzz_differential_test.cc.o"
  "CMakeFiles/fuzz_differential_test.dir/tests/fuzz_differential_test.cc.o.d"
  "fuzz_differential_test"
  "fuzz_differential_test.pdb"
  "fuzz_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
