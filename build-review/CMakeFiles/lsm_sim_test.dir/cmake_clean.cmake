file(REMOVE_RECURSE
  "CMakeFiles/lsm_sim_test.dir/tests/lsm_sim_test.cc.o"
  "CMakeFiles/lsm_sim_test.dir/tests/lsm_sim_test.cc.o.d"
  "lsm_sim_test"
  "lsm_sim_test.pdb"
  "lsm_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
