# Empty dependencies file for lsm_sim_test.
# This may be replaced when dependencies are built.
