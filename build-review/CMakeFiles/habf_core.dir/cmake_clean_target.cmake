file(REMOVE_RECURSE
  "libhabf_core.a"
)
