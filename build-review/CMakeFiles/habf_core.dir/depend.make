# Empty dependencies file for habf_core.
# This may be replaced when dependencies are built.
