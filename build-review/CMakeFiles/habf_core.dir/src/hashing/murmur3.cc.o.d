CMakeFiles/habf_core.dir/src/hashing/murmur3.cc.o: \
 /root/repo/src/hashing/murmur3.cc /usr/include/stdc-predef.h \
 /root/repo/src/hashing/murmur3.h /usr/include/c++/12/cstddef \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/os_defines.h \
 /usr/include/features.h /usr/include/features-time64.h \
 /usr/include/x86_64-linux-gnu/bits/wordsize.h \
 /usr/include/x86_64-linux-gnu/bits/timesize.h \
 /usr/include/x86_64-linux-gnu/sys/cdefs.h \
 /usr/include/x86_64-linux-gnu/bits/long-double.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs-64.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/cpu_defines.h \
 /usr/include/c++/12/pstl/pstl_config.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stddef.h \
 /usr/include/c++/12/cstdint \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stdint.h /usr/include/stdint.h \
 /usr/include/x86_64-linux-gnu/bits/libc-header-start.h \
 /usr/include/x86_64-linux-gnu/bits/types.h \
 /usr/include/x86_64-linux-gnu/bits/typesizes.h \
 /usr/include/x86_64-linux-gnu/bits/time64.h \
 /usr/include/x86_64-linux-gnu/bits/wchar.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-intn.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-uintn.h \
 /root/repo/src/hashing/xxhash.h /usr/include/c++/12/cstring \
 /usr/include/string.h \
 /usr/include/x86_64-linux-gnu/bits/types/locale_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/__locale_t.h \
 /usr/include/strings.h
