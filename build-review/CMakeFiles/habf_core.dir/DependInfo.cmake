
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bloom/bloom_filter.cc" "CMakeFiles/habf_core.dir/src/bloom/bloom_filter.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/bloom/bloom_filter.cc.o.d"
  "/root/repo/src/bloom/counting_bloom.cc" "CMakeFiles/habf_core.dir/src/bloom/counting_bloom.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/bloom/counting_bloom.cc.o.d"
  "/root/repo/src/bloom/partitioned_bloom.cc" "CMakeFiles/habf_core.dir/src/bloom/partitioned_bloom.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/bloom/partitioned_bloom.cc.o.d"
  "/root/repo/src/bloom/weighted_bloom.cc" "CMakeFiles/habf_core.dir/src/bloom/weighted_bloom.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/bloom/weighted_bloom.cc.o.d"
  "/root/repo/src/bloom/xor_filter.cc" "CMakeFiles/habf_core.dir/src/bloom/xor_filter.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/bloom/xor_filter.cc.o.d"
  "/root/repo/src/core/filter_store.cc" "CMakeFiles/habf_core.dir/src/core/filter_store.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/core/filter_store.cc.o.d"
  "/root/repo/src/core/habf.cc" "CMakeFiles/habf_core.dir/src/core/habf.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/core/habf.cc.o.d"
  "/root/repo/src/core/hash_expressor.cc" "CMakeFiles/habf_core.dir/src/core/hash_expressor.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/core/hash_expressor.cc.o.d"
  "/root/repo/src/core/sharded_filter.cc" "CMakeFiles/habf_core.dir/src/core/sharded_filter.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/core/sharded_filter.cc.o.d"
  "/root/repo/src/core/theory.cc" "CMakeFiles/habf_core.dir/src/core/theory.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/core/theory.cc.o.d"
  "/root/repo/src/hashing/cityhash.cc" "CMakeFiles/habf_core.dir/src/hashing/cityhash.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/hashing/cityhash.cc.o.d"
  "/root/repo/src/hashing/classic_hashes.cc" "CMakeFiles/habf_core.dir/src/hashing/classic_hashes.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/hashing/classic_hashes.cc.o.d"
  "/root/repo/src/hashing/crc32.cc" "CMakeFiles/habf_core.dir/src/hashing/crc32.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/hashing/crc32.cc.o.d"
  "/root/repo/src/hashing/hash_family.cc" "CMakeFiles/habf_core.dir/src/hashing/hash_family.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/hashing/hash_family.cc.o.d"
  "/root/repo/src/hashing/hash_provider.cc" "CMakeFiles/habf_core.dir/src/hashing/hash_provider.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/hashing/hash_provider.cc.o.d"
  "/root/repo/src/hashing/lookup3.cc" "CMakeFiles/habf_core.dir/src/hashing/lookup3.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/hashing/lookup3.cc.o.d"
  "/root/repo/src/hashing/murmur3.cc" "CMakeFiles/habf_core.dir/src/hashing/murmur3.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/hashing/murmur3.cc.o.d"
  "/root/repo/src/hashing/xxhash.cc" "CMakeFiles/habf_core.dir/src/hashing/xxhash.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/hashing/xxhash.cc.o.d"
  "/root/repo/src/learned/classifier.cc" "CMakeFiles/habf_core.dir/src/learned/classifier.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/learned/classifier.cc.o.d"
  "/root/repo/src/learned/learned_filters.cc" "CMakeFiles/habf_core.dir/src/learned/learned_filters.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/learned/learned_filters.cc.o.d"
  "/root/repo/src/sim/lsm.cc" "CMakeFiles/habf_core.dir/src/sim/lsm.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/sim/lsm.cc.o.d"
  "/root/repo/src/tools/cli.cc" "CMakeFiles/habf_core.dir/src/tools/cli.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/tools/cli.cc.o.d"
  "/root/repo/src/util/bitvector.cc" "CMakeFiles/habf_core.dir/src/util/bitvector.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/util/bitvector.cc.o.d"
  "/root/repo/src/util/memory.cc" "CMakeFiles/habf_core.dir/src/util/memory.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/util/memory.cc.o.d"
  "/root/repo/src/util/serde.cc" "CMakeFiles/habf_core.dir/src/util/serde.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/util/serde.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "CMakeFiles/habf_core.dir/src/util/table_printer.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/util/table_printer.cc.o.d"
  "/root/repo/src/util/zipf.cc" "CMakeFiles/habf_core.dir/src/util/zipf.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/util/zipf.cc.o.d"
  "/root/repo/src/workload/dataset.cc" "CMakeFiles/habf_core.dir/src/workload/dataset.cc.o" "gcc" "CMakeFiles/habf_core.dir/src/workload/dataset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
