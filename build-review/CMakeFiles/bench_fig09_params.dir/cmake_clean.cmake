file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_params.dir/bench/bench_fig09_params.cc.o"
  "CMakeFiles/bench_fig09_params.dir/bench/bench_fig09_params.cc.o.d"
  "bench_fig09_params"
  "bench_fig09_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
