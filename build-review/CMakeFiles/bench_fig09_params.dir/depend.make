# Empty dependencies file for bench_fig09_params.
# This may be replaced when dependencies are built.
