file(REMOVE_RECURSE
  "CMakeFiles/table_printer_test.dir/tests/table_printer_test.cc.o"
  "CMakeFiles/table_printer_test.dir/tests/table_printer_test.cc.o.d"
  "table_printer_test"
  "table_printer_test.pdb"
  "table_printer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
