# Empty dependencies file for table_printer_test.
# This may be replaced when dependencies are built.
