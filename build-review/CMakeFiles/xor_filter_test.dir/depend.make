# Empty dependencies file for xor_filter_test.
# This may be replaced when dependencies are built.
