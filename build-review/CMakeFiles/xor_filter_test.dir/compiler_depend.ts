# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for xor_filter_test.
