file(REMOVE_RECURSE
  "CMakeFiles/xor_filter_test.dir/tests/xor_filter_test.cc.o"
  "CMakeFiles/xor_filter_test.dir/tests/xor_filter_test.cc.o.d"
  "xor_filter_test"
  "xor_filter_test.pdb"
  "xor_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xor_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
