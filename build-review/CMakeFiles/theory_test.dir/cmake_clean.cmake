file(REMOVE_RECURSE
  "CMakeFiles/theory_test.dir/tests/theory_test.cc.o"
  "CMakeFiles/theory_test.dir/tests/theory_test.cc.o.d"
  "theory_test"
  "theory_test.pdb"
  "theory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
