# Empty dependencies file for theory_test.
# This may be replaced when dependencies are built.
