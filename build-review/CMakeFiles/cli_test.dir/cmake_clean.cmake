file(REMOVE_RECURSE
  "CMakeFiles/cli_test.dir/tests/cli_test.cc.o"
  "CMakeFiles/cli_test.dir/tests/cli_test.cc.o.d"
  "cli_test"
  "cli_test.pdb"
  "cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
