file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_skewed.dir/bench/bench_fig11_skewed.cc.o"
  "CMakeFiles/bench_fig11_skewed.dir/bench/bench_fig11_skewed.cc.o.d"
  "bench_fig11_skewed"
  "bench_fig11_skewed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_skewed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
