# Empty dependencies file for bench_fig11_skewed.
# This may be replaced when dependencies are built.
