// Shared scaffolding for the figure-reproduction benches: paper-equivalent
// space budgets, filter construction at a budget, and measurement plumbing.
//
// Scale note (DESIGN.md §3): the paper runs Shalla at 1.49M positives and
// YCSB at 12.5M. Weighted FPR depends on bits-per-key, not absolute size, so
// the benches default to ~100k-200k keys with the paper's bits-per-key
// budgets and print both the bpk and the paper-equivalent space label.

#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bloom/standard_bloom.h"
#include "bloom/weighted_bloom.h"
#include "bloom/xor_filter.h"
#include "hashing/xxhash.h"
#include "core/habf.h"
#include "eval/metrics.h"
#include "learned/learned_filters.h"
#include "util/table_printer.h"
#include "workload/dataset.h"

namespace habf {
namespace bench {

/// One space setting: the paper's axis label and the bits-per-key it implies
/// at the paper's dataset scale.
struct SpacePoint {
  const char* paper_label;  // e.g. "1.25MB"
  double bits_per_key;
};

/// Fig. 10/11 Shalla axis: 1.25..3.25 MB over 1.491M positives.
inline std::vector<SpacePoint> ShallaSpaceAxis() {
  return {{"1.25MB", 7.0},
          {"1.75MB", 9.8},
          {"2.25MB", 12.6},
          {"2.75MB", 15.5},
          {"3.25MB", 18.3}};
}

/// Fig. 10/11 YCSB axis: 12.5..32.5 MB over 12.5M positives.
inline std::vector<SpacePoint> YcsbSpaceAxis() {
  return {{"12.5MB", 8.4},
          {"17.5MB", 11.7},
          {"22.5MB", 15.1},
          {"27.5MB", 18.5},
          {"32.5MB", 21.8}};
}

/// Default bench scales (overridable via argv for a full-size run).
struct BenchScale {
  size_t shalla_keys = 100000;
  size_t ycsb_keys = 150000;
  int zipf_shuffles = 3;  // paper uses 10
};

inline BenchScale ScaleFromArgs(int argc, char** argv) {
  BenchScale scale;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--large") {
      scale.shalla_keys = 1000000;
      scale.ycsb_keys = 2000000;
      scale.zipf_shuffles = 10;
    } else if (arg == "--small") {
      scale.shalla_keys = 30000;
      scale.ycsb_keys = 50000;
      scale.zipf_shuffles = 2;
    }
  }
  return scale;
}

inline size_t BudgetBits(double bits_per_key, size_t num_positives) {
  return static_cast<size_t>(bits_per_key *
                             static_cast<double>(num_positives));
}

// --- filter builders at a common budget -----------------------------------

inline Habf BuildHabf(const Dataset& data, size_t total_bits,
                      bool fast = false, uint64_t seed = 0) {
  HabfOptions options;
  options.total_bits = total_bits;
  options.fast = fast;
  options.seed = seed;
  return Habf::Build(data.positives, data.negatives, options);
}

/// The paper's default BF baseline (§V-A: "we set the default hash function
/// used by f-HABF and other algorithms to XXH128"): k probe positions
/// derived from one 128-bit digest via double hashing. The
/// 22-distinct-function variant appears only in Fig. 14 ("BF").
inline DoubleHashBloom BuildBloom(const Dataset& data, size_t total_bits) {
  return DoubleHashBloom(data.positives, total_bits);
}

/// The Fig. 14 "BF" variant: k distinct Table II functions.
inline StandardBloom BuildDistinctBloom(const Dataset& data,
                                        size_t total_bits) {
  return StandardBloom(data.positives, total_bits);
}

inline XorFilter BuildXor(const Dataset& data, size_t total_bits) {
  auto filter = XorFilter::Build(
      data.positives,
      XorFilter::FingerprintBitsForBudget(total_bits,
                                          data.positives.size()));
  // Standard expansion with reseeding makes failure astronomically rare.
  if (!filter.has_value()) {
    std::fprintf(stderr, "xor filter construction failed\n");
    std::abort();
  }
  return std::move(*filter);
}

inline WeightedBloomFilter BuildWbf(const Dataset& data, size_t total_bits) {
  WeightedBloomFilter::Options options;
  options.num_bits = total_bits;
  const double bpk = static_cast<double>(total_bits) /
                     static_cast<double>(data.positives.size());
  options.k_base = OptimalNumHashes(bpk, 12);
  options.cache_fraction = 0.01;
  return WeightedBloomFilter(data.positives, data.negatives, options);
}

inline LearnedOptions MakeLearnedOptions(size_t total_bits) {
  LearnedOptions options;
  options.total_bits = total_bits;
  options.train.epochs = 3;
  return options;
}

inline LearnedBloomFilter BuildLbf(const Dataset& data, size_t total_bits) {
  return LearnedBloomFilter::Build(data.positives, data.negatives,
                                   MakeLearnedOptions(total_bits));
}

inline SandwichedLearnedBloomFilter BuildSlbf(const Dataset& data,
                                              size_t total_bits) {
  return SandwichedLearnedBloomFilter::Build(data.positives, data.negatives,
                                             MakeLearnedOptions(total_bits));
}

inline AdaptiveLearnedBloomFilter BuildAdaBf(const Dataset& data,
                                             size_t total_bits) {
  AdaptiveLearnedBloomFilter::AdaOptions options;
  options.total_bits = total_bits;
  options.train.epochs = 3;
  return AdaptiveLearnedBloomFilter::Build(data.positives, data.negatives,
                                           options);
}

/// Weighted FPR averaged over `shuffles` reshuffled Zipf cost assignments
/// (theta == 0 runs once: costs are uniform).
template <typename BuildAndMeasure>
double AverageOverShuffles(Dataset& data, double theta, int shuffles,
                           BuildAndMeasure&& run) {
  if (theta == 0.0) {
    AssignZipfCosts(&data, 0.0, 0);
    return run(data);
  }
  double total = 0.0;
  for (int s = 0; s < shuffles; ++s) {
    AssignZipfCosts(&data, theta, 1000 + s);
    total += run(data);
  }
  return total / shuffles;
}

}  // namespace bench
}  // namespace habf
