// Reproduces Fig. 13: weighted FPR vs cost skewness (Zipf theta 0..3) on
// Shalla at the 1.5 MB-equivalent budget, for HABF, f-HABF, BF and Xor.
// Paper shape: HABF/f-HABF decrease steadily with skew (they protect the
// expensive keys); BF and Xor fluctuate because a single expensive false
// positive dominates the weighted FPR.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace habf;
  using namespace habf::bench;
  const BenchScale scale = ScaleFromArgs(argc, argv);

  DatasetOptions dopt;
  dopt.num_positives = scale.shalla_keys;
  dopt.num_negatives = scale.shalla_keys;
  dopt.seed = 131;
  Dataset data = GenerateShallaLike(dopt);

  // 1.5 MB over 1.491M positives = 8.4 bits/key.
  const size_t bits = BudgetBits(8.4, data.positives.size());

  TablePrinter table(
      "Fig 13: weighted FPR(%) vs skewness (Shalla, 1.5MB-equivalent)");
  table.AddRow({"skew", "HABF", "f-HABF", "BF", "Xor"});
  for (double theta : {0.0, 0.6, 1.2, 1.8, 2.4, 3.0}) {
    auto average = [&](auto&& build) {
      return AverageOverShuffles(
          data, theta, scale.zipf_shuffles, [&](const Dataset& d) {
            const auto filter = build(d);
            return MeasureWeightedFpr(filter, d.negatives);
          });
    };
    const double habf =
        average([&](const Dataset& d) { return BuildHabf(d, bits, false); });
    const double fhabf =
        average([&](const Dataset& d) { return BuildHabf(d, bits, true); });
    const double bf =
        average([&](const Dataset& d) { return BuildBloom(d, bits); });
    const double xf =
        average([&](const Dataset& d) { return BuildXor(d, bits); });
    table.AddRow({FormatValue(theta, 2), FormatValue(habf * 100),
                  FormatValue(fhabf * 100), FormatValue(bf * 100),
                  FormatValue(xf * 100)});
  }
  table.Print();
  return 0;
}
