// Micro-benchmarks (google-benchmark) of the hot paths: query latency per
// filter split by answer (hit vs miss — misses short-circuit differently),
// the two HABF rounds in isolation, HashExpressor chain walks, and the
// scalar-vs-batch comparison of the ContainsBatch query path (recorded in
// BENCH_query.json). This is the fine-grained complement of Fig. 12's
// end-to-end numbers.

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "bloom/standard_bloom.h"
#include "bloom/xor_filter.h"
#include "core/filter_interface.h"
#include "core/habf.h"
#include "workload/dataset.h"

namespace habf {
namespace {

constexpr size_t kKeys = 50000;
constexpr double kBitsPerKey = 10.0;

const Dataset& SharedData() {
  static const Dataset data = [] {
    DatasetOptions options;
    options.num_positives = kKeys;
    options.num_negatives = kKeys;
    options.seed = 777;
    return GenerateShallaLike(options);
  }();
  return data;
}

const Habf& SharedHabf(bool fast) {
  static const Habf habf = [] {
    HabfOptions options;
    options.total_bits = static_cast<size_t>(kBitsPerKey * kKeys);
    return Habf::Build(SharedData().positives, SharedData().negatives,
                       options);
  }();
  static const Habf fhabf = [] {
    HabfOptions options;
    options.total_bits = static_cast<size_t>(kBitsPerKey * kKeys);
    options.fast = true;
    return Habf::Build(SharedData().positives, SharedData().negatives,
                       options);
  }();
  return fast ? fhabf : habf;
}

template <typename Filter>
void QueryLoop(benchmark::State& state, const Filter& filter,
               const std::vector<std::string>& keys) {
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MightContain(keys[i]));
    if (++i == keys.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}

std::vector<std::string> NegativeKeys() {
  std::vector<std::string> keys;
  for (const auto& wk : SharedData().negatives) keys.push_back(wk.key);
  return keys;
}

void BM_HabfQueryHit(benchmark::State& state) {
  QueryLoop(state, SharedHabf(false), SharedData().positives);
}
BENCHMARK(BM_HabfQueryHit);

void BM_HabfQueryMiss(benchmark::State& state) {
  static const auto negatives = NegativeKeys();
  QueryLoop(state, SharedHabf(false), negatives);
}
BENCHMARK(BM_HabfQueryMiss);

void BM_FhabfQueryHit(benchmark::State& state) {
  QueryLoop(state, SharedHabf(true), SharedData().positives);
}
BENCHMARK(BM_FhabfQueryHit);

void BM_FhabfQueryMiss(benchmark::State& state) {
  static const auto negatives = NegativeKeys();
  QueryLoop(state, SharedHabf(true), negatives);
}
BENCHMARK(BM_FhabfQueryMiss);

void BM_HabfFirstRoundOnly(benchmark::State& state) {
  const Habf& habf = SharedHabf(false);
  const auto& keys = SharedData().positives;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(habf.ContainsFirstRound(keys[i]));
    if (++i == keys.size()) i = 0;
  }
}
BENCHMARK(BM_HabfFirstRoundOnly);

void BM_ExpressorWalk(benchmark::State& state) {
  const Habf& habf = SharedHabf(false);
  static const auto negatives = NegativeKeys();
  uint8_t fns[16];
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        habf.expressor().Query(negatives[i], fns, habf.options().k));
    if (++i == negatives.size()) i = 0;
  }
}
BENCHMARK(BM_ExpressorWalk);

void BM_BloomQueryMiss(benchmark::State& state) {
  static const DoubleHashBloom bloom(
      SharedData().positives, static_cast<size_t>(kBitsPerKey * kKeys));
  static const auto negatives = NegativeKeys();
  QueryLoop(state, bloom, negatives);
}
BENCHMARK(BM_BloomQueryMiss);

void BM_XorQueryMiss(benchmark::State& state) {
  static const XorFilter filter = *XorFilter::Build(
      SharedData().positives,
      XorFilter::FingerprintBitsForBudget(
          static_cast<size_t>(kBitsPerKey * kKeys), kKeys));
  static const auto negatives = NegativeKeys();
  QueryLoop(state, filter, negatives);
}
BENCHMARK(BM_XorQueryMiss);

// --- scalar vs. batch (the ContainsBatch path) ------------------------------
//
// The batch numbers matter once the bit array outgrows L2: the prefetching
// hash-then-probe loop overlaps the probe-word loads of a whole block of
// keys. `kLargeKeys` is sized so 10 bits/key lands well past a 2 MiB L2 for every
// filter (including HABF, whose Bloom part gets 1/(1+Δ) of the budget).

constexpr size_t kLargeKeys = 4000000;
constexpr size_t kBatchSize = 256;

const Dataset& LargeData() {
  static const Dataset data = [] {
    DatasetOptions options;
    options.num_positives = kLargeKeys;
    options.num_negatives = kLargeKeys;
    options.seed = 99;
    return GenerateShallaLike(options);
  }();
  return data;
}

/// Positives and negatives interleaved, as string_views into `data`.
std::vector<std::string_view> MixedKeys(const Dataset& data) {
  std::vector<std::string_view> keys;
  keys.reserve(data.positives.size() + data.negatives.size());
  for (size_t i = 0; i < data.positives.size(); ++i) {
    keys.push_back(data.positives[i]);
    if (i < data.negatives.size()) keys.push_back(data.negatives[i].key);
  }
  return keys;
}

template <typename Filter>
void ScalarLoop(benchmark::State& state, const Filter& filter,
                const std::vector<std::string_view>& keys) {
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MightContain(keys[i]));
    if (++i == keys.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename Filter>
void BatchLoop(benchmark::State& state, const Filter& filter,
               const std::vector<std::string_view>& keys) {
  uint8_t out[kBatchSize];
  size_t base = 0;
  size_t processed = 0;
  for (auto _ : state) {
    const size_t count =
        keys.size() - base < kBatchSize ? keys.size() - base : kBatchSize;
    benchmark::DoNotOptimize(
        filter.ContainsBatch(KeySpan(keys.data() + base, count), out));
    processed += count;
    base += count;
    if (base >= keys.size()) base = 0;
  }
  state.SetItemsProcessed(static_cast<int64_t>(processed));
}

const StandardBloom& LargeStandardBloom() {
  static const StandardBloom filter(
      LargeData().positives, static_cast<size_t>(kBitsPerKey * kLargeKeys));
  return filter;
}

const DoubleHashBloom& LargeDoubleHashBloom() {
  static const DoubleHashBloom filter(
      LargeData().positives, static_cast<size_t>(kBitsPerKey * kLargeKeys));
  return filter;
}

const std::vector<std::string_view>& LargeMixedKeys() {
  static const auto keys = MixedKeys(LargeData());
  return keys;
}

void BM_StandardBloomScalar(benchmark::State& state) {
  ScalarLoop(state, LargeStandardBloom(), LargeMixedKeys());
}
BENCHMARK(BM_StandardBloomScalar);

void BM_StandardBloomBatch(benchmark::State& state) {
  BatchLoop(state, LargeStandardBloom(), LargeMixedKeys());
}
BENCHMARK(BM_StandardBloomBatch);

void BM_DoubleHashBloomScalar(benchmark::State& state) {
  ScalarLoop(state, LargeDoubleHashBloom(), LargeMixedKeys());
}
BENCHMARK(BM_DoubleHashBloomScalar);

void BM_DoubleHashBloomBatch(benchmark::State& state) {
  BatchLoop(state, LargeDoubleHashBloom(), LargeMixedKeys());
}
BENCHMARK(BM_DoubleHashBloomBatch);

const XorFilter& LargeXorFilter() {
  static const XorFilter filter = *XorFilter::Build(
      LargeData().positives,
      XorFilter::FingerprintBitsForBudget(
          static_cast<size_t>(kBitsPerKey * kLargeKeys), kLargeKeys));
  return filter;
}

void BM_XorScalar(benchmark::State& state) {
  ScalarLoop(state, LargeXorFilter(), LargeMixedKeys());
}
BENCHMARK(BM_XorScalar);

void BM_XorBatch(benchmark::State& state) {
  BatchLoop(state, LargeXorFilter(), LargeMixedKeys());
}
BENCHMARK(BM_XorBatch);

const Habf& LargeHabf() {
  static const Habf habf = [] {
    HabfOptions options;
    options.total_bits = static_cast<size_t>(kBitsPerKey * kLargeKeys);
    return Habf::Build(LargeData().positives, LargeData().negatives, options);
  }();
  return habf;
}

void BM_HabfScalar(benchmark::State& state) {
  ScalarLoop(state, LargeHabf(), LargeMixedKeys());
}
BENCHMARK(BM_HabfScalar);

void BM_HabfBatch(benchmark::State& state) {
  BatchLoop(state, LargeHabf(), LargeMixedKeys());
}
BENCHMARK(BM_HabfBatch);

void BM_HabfBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  DatasetOptions options;
  options.num_positives = n;
  options.num_negatives = n;
  options.seed = 88;
  const Dataset data = GenerateShallaLike(options);
  HabfOptions habf_options;
  habf_options.total_bits = static_cast<size_t>(kBitsPerKey * n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Habf::Build(data.positives, data.negatives, habf_options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HabfBuild)->Arg(1000)->Arg(10000)->Arg(50000);

}  // namespace
}  // namespace habf

BENCHMARK_MAIN();
