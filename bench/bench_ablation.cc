// Ablation bench for the design choices DESIGN.md calls out (not a paper
// figure; supports the §III design narrative):
//  A1  conflict detection (Γ): HABF vs f-HABF-style no-Γ at equal space —
//      how much accuracy the Γ index buys under skewed costs;
//  A2  cost-descending collision-queue order vs input order — the paper
//      optimizes expensive keys first because HashExpressor capacity is
//      finite (here: compare weighted FPR at several skews);
//  A3  per-key customization (HABF) vs per-group customization
//      (partitioned hashing, Hao et al.) vs none (BF);
//  A4  double hashing vs distinct functions for the plain Bloom half.

#include "bench_common.h"
#include "bloom/partitioned_bloom.h"

namespace habf {
namespace bench {
namespace {

void AblationGamma(Dataset& data, int shuffles) {
  TablePrinter table(
      "A1: value of the Gamma index (weighted FPR %, Zipf 1.0, Shalla)");
  table.AddRow({"bits/key", "HABF (with Gamma)", "no Gamma (fast)", "BF"});
  for (double bpk : {7.0, 9.8, 12.6}) {
    const size_t bits = BudgetBits(bpk, data.positives.size());
    auto average = [&](auto&& build) {
      return AverageOverShuffles(data, 1.0, shuffles,
                                 [&](const Dataset& d) {
                                   const auto filter = build(d);
                                   return MeasureWeightedFpr(filter,
                                                             d.negatives);
                                 });
    };
    const double with_gamma =
        average([&](const Dataset& d) { return BuildHabf(d, bits, false); });
    const double no_gamma =
        average([&](const Dataset& d) { return BuildHabf(d, bits, true); });
    const double bf =
        average([&](const Dataset& d) { return BuildBloom(d, bits); });
    table.AddRow({FormatValue(bpk, 3), FormatValue(with_gamma * 100),
                  FormatValue(no_gamma * 100), FormatValue(bf * 100)});
  }
  table.Print();
  std::printf("\n");
}

void AblationQueueOrder(Dataset& data, int shuffles) {
  // Cost-descending order is implemented inside TPJO; emulate "input order"
  // by flattening the costs before the build and re-weighting the
  // measurement afterwards (the optimizer then cannot see which keys are
  // expensive).
  TablePrinter table(
      "A2: cost-aware queue order (weighted FPR %, 8.4 bits/key, Shalla)");
  table.AddRow({"skew", "cost-aware TPJO", "cost-blind TPJO"});
  const size_t bits = BudgetBits(8.4, data.positives.size());
  for (double theta : {0.6, 1.2, 2.4}) {
    const double aware = AverageOverShuffles(
        data, theta, shuffles, [&](const Dataset& d) {
          return MeasureWeightedFpr(BuildHabf(d, bits, false), d.negatives);
        });
    const double blind = AverageOverShuffles(
        data, theta, shuffles, [&](const Dataset& d) {
          Dataset flattened = d;  // same keys, costs hidden from TPJO
          for (auto& wk : flattened.negatives) wk.cost = 1.0;
          const Habf filter = BuildHabf(flattened, bits, false);
          return MeasureWeightedFpr(filter, d.negatives);
        });
    table.AddRow({FormatValue(theta, 2), FormatValue(aware * 100),
                  FormatValue(blind * 100)});
  }
  table.Print();
  std::printf("\n");
}

void AblationGranularity(Dataset& data) {
  AssignZipfCosts(&data, 0.0, 0);
  TablePrinter table(
      "A3: customization granularity (FPR %, uniform costs, Shalla)");
  table.AddRow({"bits/key", "per-key (HABF)", "per-group (partitioned)",
                "none (BF)"});
  for (double bpk : {7.0, 12.6, 18.3}) {
    const size_t bits = BudgetBits(bpk, data.positives.size());
    const Habf habf = BuildHabf(data, bits, false);
    PartitionedBloomFilter::Options popt;
    popt.num_bits = bits;
    popt.k = OptimalNumHashes(bpk);
    popt.num_groups = 8;
    const PartitionedBloomFilter pbf(data.positives, popt);
    const DoubleHashBloom bf = BuildBloom(data, bits);
    table.AddRow(
        {FormatValue(bpk, 3),
         FormatValue(MeasureWeightedFpr(habf, data.negatives) * 100),
         FormatValue(MeasureWeightedFpr(pbf, data.negatives) * 100),
         FormatValue(MeasureWeightedFpr(bf, data.negatives) * 100)});
  }
  table.Print();
  std::printf("\n");
}

void AblationDoubleHashing(Dataset& data) {
  AssignZipfCosts(&data, 0.0, 0);
  TablePrinter table(
      "A4: double hashing vs distinct functions (plain BF half, FPR %)");
  table.AddRow({"bits/key", "distinct (22-fn family)", "double hashing"});
  for (double bpk : {7.0, 12.6, 18.3}) {
    const size_t bits = BudgetBits(bpk, data.positives.size());
    const StandardBloom distinct = BuildDistinctBloom(data, bits);

    const size_t k = OptimalNumHashes(bpk);
    DoubleHashProvider provider(k);
    std::vector<uint8_t> fns(k);
    for (size_t i = 0; i < k; ++i) fns[i] = static_cast<uint8_t>(i);
    BloomFilter doubled(bits, &provider, fns);
    for (const auto& key : data.positives) doubled.Add(key);

    table.AddRow(
        {FormatValue(bpk, 3),
         FormatValue(MeasureWeightedFpr(distinct, data.negatives) * 100),
         FormatValue(MeasureWeightedFpr(doubled, data.negatives) * 100)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace habf

int main(int argc, char** argv) {
  using namespace habf;
  using namespace habf::bench;
  const BenchScale scale = ScaleFromArgs(argc, argv);

  DatasetOptions dopt;
  dopt.num_positives = scale.shalla_keys;
  dopt.num_negatives = scale.shalla_keys;
  dopt.seed = 161;
  Dataset data = GenerateShallaLike(dopt);

  AblationGamma(data, scale.zipf_shuffles);
  AblationQueueOrder(data, scale.zipf_shuffles);
  AblationGranularity(data);
  AblationDoubleHashing(data);
  return 0;
}
