// Reproduces Fig. 12: construction time and query latency in ns/key for
// every filter on both datasets at the fixed paper budget (1.5 MB-equivalent
// for Shalla, 15 MB-equivalent for YCSB).
// Paper shape: BF fastest; Xor and f-HABF the same order of magnitude; HABF
// ~10-20x BF construction and ~5x BF query; learned filters orders of
// magnitude slower on both axes (SGD training / model inference). GPU rows
// of the paper are out of scope (no GPU substrate; see EXPERIMENTS.md).

#include "bench_common.h"

namespace habf {
namespace bench {
namespace {

struct TimeRow {
  const char* name;
  double construct_ns;
  double query_ns;
};

template <typename Build>
TimeRow MeasureFilter(const char* name, const Dataset& data, Build&& build) {
  Stopwatch watch;
  const auto filter = build(data);
  const double construct_ns =
      static_cast<double>(watch.ElapsedNanos()) /
      static_cast<double>(data.positives.size());
  const double query_ns =
      MeasureQueryNsPerKey(filter, data.positives, data.negatives, 1);
  return {name, construct_ns, query_ns};
}

void RunDataset(const char* label, Dataset data, double bpk) {
  AssignZipfCosts(&data, 0.0, 0);
  const size_t bits = BudgetBits(bpk, data.positives.size());
  std::vector<TimeRow> rows;
  rows.push_back(MeasureFilter("HABF", data, [&](const Dataset& d) {
    return BuildHabf(d, bits, false);
  }));
  rows.push_back(MeasureFilter("f-HABF", data, [&](const Dataset& d) {
    return BuildHabf(d, bits, true);
  }));
  rows.push_back(MeasureFilter(
      "BF", data, [&](const Dataset& d) { return BuildBloom(d, bits); }));
  rows.push_back(MeasureFilter(
      "Xor", data, [&](const Dataset& d) { return BuildXor(d, bits); }));
  rows.push_back(MeasureFilter(
      "WBF", data, [&](const Dataset& d) { return BuildWbf(d, bits); }));
  rows.push_back(MeasureFilter(
      "LBF", data, [&](const Dataset& d) { return BuildLbf(d, bits); }));
  rows.push_back(MeasureFilter(
      "SLBF", data, [&](const Dataset& d) { return BuildSlbf(d, bits); }));
  rows.push_back(MeasureFilter(
      "Ada-BF", data, [&](const Dataset& d) { return BuildAdaBf(d, bits); }));

  TablePrinter table(std::string("Fig 12 (") + label +
                     "): construction and query time, ns/key");
  table.AddRow({"filter", "construct(ns/key)", "query(ns/key)",
                "construct/BF", "query/BF"});
  const double bf_construct = rows[2].construct_ns;
  const double bf_query = rows[2].query_ns;
  for (const TimeRow& row : rows) {
    table.AddRow({row.name, FormatValue(row.construct_ns),
                  FormatValue(row.query_ns),
                  FormatValue(row.construct_ns / bf_construct, 3),
                  FormatValue(row.query_ns / bf_query, 3)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace habf

int main(int argc, char** argv) {
  using namespace habf;
  using namespace habf::bench;
  const BenchScale scale = ScaleFromArgs(argc, argv);

  DatasetOptions shalla_opt;
  shalla_opt.num_positives = scale.shalla_keys;
  shalla_opt.num_negatives = scale.shalla_keys;
  shalla_opt.seed = 121;
  RunDataset("Shalla, 1.5MB-equivalent", GenerateShallaLike(shalla_opt), 8.4);

  DatasetOptions ycsb_opt;
  ycsb_opt.num_positives = scale.ycsb_keys;
  ycsb_opt.num_negatives = static_cast<size_t>(scale.ycsb_keys * 0.93);
  ycsb_opt.seed = 122;
  RunDataset("YCSB, 15MB-equivalent", GenerateYcsbLike(ycsb_opt), 10.1);
  return 0;
}
