// Reproduces Fig. 8: measured FPR of HABF vs the theoretical upper bound of
// Eq. (19), (a) varying the number of hash functions k at b = 10 bits/key,
// (b) varying bits-per-key b at k = 4.
// Paper shape: the bound always sits above the measured value.

#include "bench_common.h"
#include "core/theory.h"

namespace habf {
namespace bench {
namespace {

struct BoundRow {
  double measured;
  double bound;
};

BoundRow MeasureOne(const Dataset& data, size_t k, double bpk) {
  HabfOptions options;
  options.total_bits = BudgetBits(bpk, data.positives.size());
  options.k = k;
  options.cell_bits = 5;  // 15 usable functions so k can reach 10
  const Habf filter = Habf::Build(data.positives, data.negatives, options);

  const double measured = MeasureWeightedFpr(filter, data.negatives);
  const size_t omega = filter.expressor().num_cells();
  const double bloom_bpk = static_cast<double>(filter.bloom().num_bits()) /
                           static_cast<double>(data.positives.size());
  const double pc = PcPrimeModel(filter.options().k, bloom_bpk,
                                 filter.usable_functions());
  const double fbf_star =
      FbfStarUpperBound(filter.options().k, bloom_bpk,
                        data.negatives.size(), pc, omega);
  const double bound =
      HabfFprUpperBound(fbf_star, omega, filter.expressor().num_inserted());
  return {measured, bound};
}

}  // namespace
}  // namespace bench
}  // namespace habf

int main(int argc, char** argv) {
  using namespace habf;
  using namespace habf::bench;
  const BenchScale scale = ScaleFromArgs(argc, argv);

  DatasetOptions dopt;
  dopt.num_positives = scale.shalla_keys;
  dopt.num_negatives = scale.shalla_keys;
  dopt.seed = 81;
  Dataset data = GenerateShallaLike(dopt);
  AssignZipfCosts(&data, 0.0, 0);

  {
    TablePrinter table("Fig 8(a): FPR(%) real vs theoretic bound, b=10");
    table.AddRow({"k", "real(%)", "bound(%)", "bound>=real"});
    for (size_t k = 2; k <= 10; ++k) {
      const auto row = MeasureOne(data, k, 10.0);
      table.AddRow({std::to_string(k), FormatValue(row.measured * 100),
                    FormatValue(row.bound * 100),
                    row.bound >= row.measured ? "yes" : "NO"});
    }
    table.Print();
    std::printf("\n");
  }
  {
    TablePrinter table("Fig 8(b): FPR(%) real vs theoretic bound, k=4");
    table.AddRow({"bits/key", "real(%)", "bound(%)", "bound>=real"});
    for (int b = 4; b <= 13; ++b) {
      const auto row = MeasureOne(data, 4, static_cast<double>(b));
      table.AddRow({std::to_string(b), FormatValue(row.measured * 100),
                    FormatValue(row.bound * 100),
                    row.bound >= row.measured ? "yes" : "NO"});
    }
    table.Print();
  }
  return 0;
}
