// Reproduces Fig. 10: weighted FPR vs space under UNIFORM cost distribution.
//  (a) Shalla vs non-learned filters   (b) Shalla vs learned filters
//  (c) YCSB   vs non-learned filters   (d) YCSB   vs learned filters
// Paper shape: HABF lowest (or joint lowest) everywhere; learned filters
// competitive on Shalla (evident characteristics) but not on YCSB.

#include "bench_common.h"

namespace habf {
namespace bench {
namespace {

void RunDataset(const char* name, Dataset data,
                const std::vector<SpacePoint>& axis) {
  TablePrinter table(std::string("Fig 10 (") + name +
                     ", uniform costs): weighted FPR vs space");
  table.AddRow({"space", "bits/key", "HABF", "f-HABF", "BF", "Xor", "LBF",
                "SLBF", "Ada-BF"});
  AssignZipfCosts(&data, 0.0, 0);
  for (const SpacePoint& point : axis) {
    const size_t bits = BudgetBits(point.bits_per_key, data.positives.size());
    const Habf habf = BuildHabf(data, bits, /*fast=*/false);
    const Habf fhabf = BuildHabf(data, bits, /*fast=*/true);
    const DoubleHashBloom bf = BuildBloom(data, bits);
    const XorFilter xf = BuildXor(data, bits);
    const auto lbf = BuildLbf(data, bits);
    const auto slbf = BuildSlbf(data, bits);
    const auto ada = BuildAdaBf(data, bits);
    table.AddRow({point.paper_label, FormatValue(point.bits_per_key, 3),
                  FormatValue(MeasureWeightedFpr(habf, data.negatives)),
                  FormatValue(MeasureWeightedFpr(fhabf, data.negatives)),
                  FormatValue(MeasureWeightedFpr(bf, data.negatives)),
                  FormatValue(MeasureWeightedFpr(xf, data.negatives)),
                  FormatValue(MeasureWeightedFpr(lbf, data.negatives)),
                  FormatValue(MeasureWeightedFpr(slbf, data.negatives)),
                  FormatValue(MeasureWeightedFpr(ada, data.negatives))});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace habf

int main(int argc, char** argv) {
  using namespace habf;
  using namespace habf::bench;
  const BenchScale scale = ScaleFromArgs(argc, argv);

  DatasetOptions shalla_opt;
  shalla_opt.num_positives = scale.shalla_keys;
  shalla_opt.num_negatives = scale.shalla_keys;
  shalla_opt.seed = 101;
  RunDataset("Shalla", GenerateShallaLike(shalla_opt), ShallaSpaceAxis());

  DatasetOptions ycsb_opt;
  ycsb_opt.num_positives = scale.ycsb_keys;
  ycsb_opt.num_negatives = static_cast<size_t>(scale.ycsb_keys * 0.93);
  ycsb_opt.seed = 102;
  RunDataset("YCSB", GenerateYcsbLike(ycsb_opt), YcsbSpaceAxis());
  return 0;
}
