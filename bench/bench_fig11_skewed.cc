// Reproduces Fig. 11: weighted FPR vs space under SKEWED (Zipf 1.0) costs,
// averaged over reshuffled cost assignments, with WBF added as the
// cost-aware non-learned baseline.
// Paper shape: HABF lowest everywhere, and the HABF advantage is larger
// than in Fig. 10 because it concentrates adjustments on expensive keys.

#include "bench_common.h"

namespace habf {
namespace bench {
namespace {

constexpr double kTheta = 1.0;

void RunDataset(const char* name, Dataset data,
                const std::vector<SpacePoint>& axis, int shuffles) {
  TablePrinter table(std::string("Fig 11 (") + name +
                     ", Zipf 1.0 costs): weighted FPR vs space");
  table.AddRow({"space", "bits/key", "HABF", "f-HABF", "BF", "Xor", "WBF",
                "LBF", "SLBF", "Ada-BF"});
  for (const SpacePoint& point : axis) {
    const size_t bits = BudgetBits(point.bits_per_key, data.positives.size());
    auto average = [&](auto&& build) {
      return AverageOverShuffles(data, kTheta, shuffles,
                                 [&](const Dataset& d) {
                                   const auto filter = build(d);
                                   return MeasureWeightedFpr(filter,
                                                             d.negatives);
                                 });
    };
    const double habf = average(
        [&](const Dataset& d) { return BuildHabf(d, bits, false); });
    const double fhabf =
        average([&](const Dataset& d) { return BuildHabf(d, bits, true); });
    const double bf =
        average([&](const Dataset& d) { return BuildBloom(d, bits); });
    const double xf =
        average([&](const Dataset& d) { return BuildXor(d, bits); });
    const double wbf =
        average([&](const Dataset& d) { return BuildWbf(d, bits); });
    const double lbf =
        average([&](const Dataset& d) { return BuildLbf(d, bits); });
    const double slbf =
        average([&](const Dataset& d) { return BuildSlbf(d, bits); });
    const double ada =
        average([&](const Dataset& d) { return BuildAdaBf(d, bits); });
    table.AddRow({point.paper_label, FormatValue(point.bits_per_key, 3),
                  FormatValue(habf), FormatValue(fhabf), FormatValue(bf),
                  FormatValue(xf), FormatValue(wbf), FormatValue(lbf),
                  FormatValue(slbf), FormatValue(ada)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace habf

int main(int argc, char** argv) {
  using namespace habf;
  using namespace habf::bench;
  const BenchScale scale = ScaleFromArgs(argc, argv);

  DatasetOptions shalla_opt;
  shalla_opt.num_positives = scale.shalla_keys;
  shalla_opt.num_negatives = scale.shalla_keys;
  shalla_opt.seed = 111;
  RunDataset("Shalla", GenerateShallaLike(shalla_opt), ShallaSpaceAxis(),
             scale.zipf_shuffles);

  DatasetOptions ycsb_opt;
  ycsb_opt.num_positives = scale.ycsb_keys;
  ycsb_opt.num_negatives = static_cast<size_t>(scale.ycsb_keys * 0.93);
  ycsb_opt.seed = 112;
  RunDataset("YCSB", GenerateYcsbLike(ycsb_opt), YcsbSpaceAxis(),
             scale.zipf_shuffles);
  return 0;
}
