// Reproduces Fig. 14: Bloom filter with different hash implementations on
// YCSB — BF (k distinct Table II functions), BF(City64) and BF(XXH128)
// (one function, k seeds) — against HABF, under uniform and Zipf(1.0) costs.
// Paper shape: the three BF implementations are near-identical and none
// responds to cost skew; HABF beats them all, and by more under skew.

#include "bench_common.h"
#include "hashing/cityhash.h"
#include "hashing/xxhash.h"

namespace habf {
namespace bench {
namespace {

SeededBloomFilter BuildSeeded(const Dataset& data, size_t bits, HashFn fn) {
  const double bpk = static_cast<double>(bits) /
                     static_cast<double>(data.positives.size());
  SeededBloomFilter filter(bits, OptimalNumHashes(bpk), fn);
  for (const auto& key : data.positives) filter.Add(key);
  return filter;
}

void RunDistribution(const char* label, Dataset& data, double theta,
                     int shuffles) {
  TablePrinter table(std::string("Fig 14 (YCSB, ") + label +
                     "): weighted FPR(%) vs space");
  table.AddRow({"space", "bits/key", "HABF", "BF", "BF(City64)",
                "BF(XXH128)"});
  for (const SpacePoint& point : YcsbSpaceAxis()) {
    const size_t bits = BudgetBits(point.bits_per_key, data.positives.size());
    auto average = [&](auto&& build) {
      return AverageOverShuffles(data, theta, shuffles,
                                 [&](const Dataset& d) {
                                   const auto filter = build(d);
                                   return MeasureWeightedFpr(filter,
                                                             d.negatives);
                                 });
    };
    const double habf =
        average([&](const Dataset& d) { return BuildHabf(d, bits, false); });
    const double bf = average(
        [&](const Dataset& d) { return BuildDistinctBloom(d, bits); });
    const double city = average([&](const Dataset& d) {
      return BuildSeeded(d, bits, &CityHash64);
    });
    const double xxh = average([&](const Dataset& d) {
      return BuildSeeded(d, bits, &XxHash128Low);
    });
    table.AddRow({point.paper_label, FormatValue(point.bits_per_key, 3),
                  FormatValue(habf * 100), FormatValue(bf * 100),
                  FormatValue(city * 100), FormatValue(xxh * 100)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace habf

int main(int argc, char** argv) {
  using namespace habf;
  using namespace habf::bench;
  const BenchScale scale = ScaleFromArgs(argc, argv);

  DatasetOptions dopt;
  dopt.num_positives = scale.ycsb_keys;
  dopt.num_negatives = static_cast<size_t>(scale.ycsb_keys * 0.93);
  dopt.seed = 141;
  Dataset data = GenerateYcsbLike(dopt);

  RunDistribution("uniform", data, 0.0, 1);
  RunDistribution("Zipf 1.0", data, 1.0, scale.zipf_shuffles);
  return 0;
}
