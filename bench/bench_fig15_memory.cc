// Reproduces Fig. 15: memory footprint DURING CONSTRUCTION for every filter
// (logical accounting via MemoryCounter; the paper reports GB at its scale,
// we report MB at bench scale plus the ratio to BF, which is the
// scale-independent quantity).
// Paper shape: HABF ~6x BF (V + Γ + negative keys), f-HABF ~3.6x, WBF above
// BF (cost cache), learned filters highest (training buffers + model).

#include "bench_common.h"

namespace habf {
namespace bench {
namespace {

struct MemRow {
  std::string name;
  size_t bytes;
};

void RunDataset(const char* label, Dataset data, double bpk) {
  AssignZipfCosts(&data, 1.0, 7);
  const size_t bits = BudgetBits(bpk, data.positives.size());

  size_t key_bytes = 0;
  for (const auto& key : data.positives) {
    key_bytes += key.size() + sizeof(std::string);
  }

  std::vector<MemRow> rows;

  {
    const Habf habf = BuildHabf(data, bits, false);
    rows.push_back(
        {"HABF", habf.stats().construction_memory.TotalBytes() + key_bytes});
  }
  {
    // f-HABF disables Γ, so its counter is smaller by the Γ share; the
    // remaining V index is common to both variants.
    const Habf fhabf = BuildHabf(data, bits, true);
    rows.push_back(
        {"f-HABF",
         fhabf.stats().construction_memory.TotalBytes() + key_bytes});
  }
  {
    const DoubleHashBloom bf = BuildBloom(data, bits);
    rows.push_back({"BF", bf.MemoryUsageBytes() + key_bytes});
  }
  {
    const XorFilter xf = BuildXor(data, bits);
    // Peeling state: 3 slots/key of (xor-id + degree) plus the key slots.
    const size_t peel_bytes =
        xf.num_slots() * (sizeof(uint64_t) + sizeof(uint32_t)) +
        data.positives.size() * 3 * sizeof(uint64_t);
    rows.push_back({"Xor", xf.MemoryUsageBytes() + peel_bytes + key_bytes});
  }
  {
    const WeightedBloomFilter wbf = BuildWbf(data, bits);
    size_t neg_bytes = 0;
    for (const auto& wk : data.negatives) {
      neg_bytes += wk.key.size() + sizeof(WeightedKey);
    }
    rows.push_back({"WBF", wbf.MemoryUsageBytes() + neg_bytes + key_bytes});
  }
  {
    const auto lbf = BuildLbf(data, bits);
    MemoryCounter mem;
    lbf.ReportConstructionMemory(&mem);
    size_t neg_bytes = 0;
    for (const auto& wk : data.negatives) {
      neg_bytes += wk.key.size() + sizeof(WeightedKey);
    }
    rows.push_back({"LBF", mem.TotalBytes() + neg_bytes + key_bytes});
  }
  {
    const auto slbf = BuildSlbf(data, bits);
    MemoryCounter mem;
    slbf.ReportConstructionMemory(&mem);
    size_t neg_bytes = 0;
    for (const auto& wk : data.negatives) {
      neg_bytes += wk.key.size() + sizeof(WeightedKey);
    }
    rows.push_back({"SLBF", mem.TotalBytes() + neg_bytes + key_bytes});
  }
  {
    const auto ada = BuildAdaBf(data, bits);
    MemoryCounter mem;
    ada.ReportConstructionMemory(&mem);
    size_t neg_bytes = 0;
    for (const auto& wk : data.negatives) {
      neg_bytes += wk.key.size() + sizeof(WeightedKey);
    }
    rows.push_back({"Ada-BF", mem.TotalBytes() + neg_bytes + key_bytes});
  }

  TablePrinter table(std::string("Fig 15 (") + label +
                     "): construction memory footprint");
  table.AddRow({"filter", "MB", "ratio vs BF"});
  const double bf_bytes = static_cast<double>(rows[2].bytes);
  for (const MemRow& row : rows) {
    table.AddRow({row.name,
                  FormatValue(static_cast<double>(row.bytes) / (1 << 20)),
                  FormatValue(static_cast<double>(row.bytes) / bf_bytes, 3)});
  }
  table.Print();
  std::printf("  (process RSS now: %s MB)\n\n",
              FormatValue(static_cast<double>(ReadResidentSetBytes()) /
                          (1 << 20), 4)
                  .c_str());
}

}  // namespace
}  // namespace bench
}  // namespace habf

int main(int argc, char** argv) {
  using namespace habf;
  using namespace habf::bench;
  const BenchScale scale = ScaleFromArgs(argc, argv);

  DatasetOptions shalla_opt;
  shalla_opt.num_positives = scale.shalla_keys;
  shalla_opt.num_negatives = scale.shalla_keys;
  shalla_opt.seed = 151;
  RunDataset("Shalla, 1.5MB-equivalent", GenerateShallaLike(shalla_opt), 8.4);

  DatasetOptions ycsb_opt;
  ycsb_opt.num_positives = scale.ycsb_keys;
  ycsb_opt.num_negatives = static_cast<size_t>(scale.ycsb_keys * 0.93);
  ycsb_opt.seed = 152;
  RunDataset("YCSB, 15MB-equivalent", GenerateYcsbLike(ycsb_opt), 10.1);
  return 0;
}
