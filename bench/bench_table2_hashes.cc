// Reproduces Table II operationally: the 22-function global hash family,
// with per-function throughput (google-benchmark) and a uniformity summary.
// The paper's table only lists the functions; this bench demonstrates that
// every member is implemented and behaves as an independent uniform hash.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "hashing/hash_function.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace habf {
namespace {

std::vector<std::string> MakeKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  Xoshiro256 rng(2);
  for (size_t i = 0; i < n; ++i) {
    std::string key = "http://bench" + std::to_string(i) + ".example/";
    const size_t extra = rng.NextBounded(32);
    for (size_t j = 0; j < extra; ++j) {
      key += static_cast<char>('a' + rng.NextBounded(26));
    }
    keys.push_back(std::move(key));
  }
  return keys;
}

void BM_HashFunction(benchmark::State& state) {
  const size_t idx = static_cast<size_t>(state.range(0));
  const auto& family = HashFamily::Global();
  static const std::vector<std::string> keys = MakeKeys(4096);
  size_t i = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    const std::string& key = keys[i++ & 4095];
    benchmark::DoNotOptimize(family.Hash(idx, key, 0));
    bytes += key.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.SetLabel(family.Name(idx));
}

void PrintUniformitySummary() {
  const auto& family = HashFamily::Global();
  const auto keys = MakeKeys(50000);
  TablePrinter table("Table II: global hash family uniformity (chi2, 64 buckets; 99.9% quantile is ~103)");
  table.AddRow({"index", "function", "chi2"});
  for (size_t idx = 0; idx < family.size(); ++idx) {
    constexpr size_t kBuckets = 64;
    size_t counts[kBuckets] = {};
    for (const auto& key : keys) ++counts[family.Hash(idx, key, 0) % kBuckets];
    const double expected = static_cast<double>(keys.size()) / kBuckets;
    double chi2 = 0.0;
    for (size_t b = 0; b < kBuckets; ++b) {
      const double d = counts[b] - expected;
      chi2 += d * d / expected;
    }
    table.AddRow({std::to_string(idx + 1), family.Name(idx),
                  FormatValue(chi2, 4)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace habf

BENCHMARK(habf::BM_HashFunction)->DenseRange(0, 21);

int main(int argc, char** argv) {
  habf::PrintUniformitySummary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
