// Sharded HABF bench: parallel-vs-serial TPJO construction, the zero-copy
// partitioning memory win, and sharded batch-query throughput — serial
// grouping and the pooled per-shard fan-out (results recorded into
// BENCH_query.json).
//
// Construction is HABF's dominant cost (paper §IV); the sharded build runs
// S independent TPJO builds on a util/thread_pool.h pool, so on a T-core
// host the expected construction speedup approaches min(S, T). The memory
// section compares the span-based partitioning (shard-contiguous view
// permutations over the caller's keys) against a bench-local replica of the
// old copying partition (per-shard std::string vectors), via both exact
// logical partition bytes and per-build peak-RSS deltas, each build forked
// into its own child (identical inherited heap, VmHWM reset via clear_refs)
// so neither build can hide allocations in pages the other faulted in.
//
// The skew section measures the routing-balance win of the two-choice
// directory (DESIGN.md §6): max/mean shard weight under uniform hash
// routing vs the two-choice directory, on a Zipf(1.1)-weighted key set and
// on a single-hot-key adversarial set (routing-only — no filter builds — so
// it runs at full acceptance scale, 1M keys, in milliseconds).
//
// The dynamic section exercises the mutable tier (DESIGN.md §7): sustained
// mixed insert/delete/query throughput against DynamicShardedHabf while
// dirty-shard compactions run on a background thread, plus a sweep that
// aims mutations at exactly k shards and compacts, showing rebuild cost
// scaling with the dirty-shard count rather than the filter size.
//
// Usage: bench_sharded_build [--keys N] [--shards S] [--threads T]
//                            [--repeats R] [--skew-keys N] [--json]
// Defaults: 200k keys, S = 8, T = hardware threads, 3 repeats, 1M skew
// keys, table output.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>

#if defined(__GLIBC__)
#include <malloc.h>  // malloc_trim
#endif

#include "core/delta_wal.h"
#include "core/dynamic_filter.h"
#include "core/filter_interface.h"
#include "core/filter_store.h"
#include "core/habf.h"
#include "core/routing_directory.h"
#include "core/sharded_filter.h"
#include "eval/metrics.h"
#include "net/client.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "util/memory.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/dataset.h"

namespace habf {
namespace {

struct Args {
  size_t keys = 200000;
  size_t shards = 8;
  size_t threads = 0;  // 0 = hardware concurrency
  int repeats = 3;
  size_t skew_keys = 1000000;
  bool json = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--keys") {
      if (const char* v = next()) args.keys = std::strtoull(v, nullptr, 10);
    } else if (arg == "--shards") {
      if (const char* v = next()) args.shards = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      if (const char* v = next()) args.threads = std::strtoull(v, nullptr, 10);
    } else if (arg == "--repeats") {
      if (const char* v = next()) {
        args.repeats = static_cast<int>(std::strtol(v, nullptr, 10));
      }
    } else if (arg == "--skew-keys") {
      if (const char* v = next()) {
        args.skew_keys = std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--json") {
      args.json = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_sharded_build [--keys N] [--shards S] "
                   "[--threads T] [--repeats R] [--skew-keys N] [--json]\n");
      std::exit(1);
    }
  }
  if (args.keys == 0 || args.shards == 0 || args.repeats < 1 ||
      args.skew_keys == 0) {
    std::fprintf(stderr, "bad arguments\n");
    std::exit(1);
  }
  return args;
}

/// Best-of-R wall time of `fn` in nanoseconds (construction benches report
/// the minimum: it is the least noise-contaminated estimate).
template <typename Fn>
uint64_t BestOf(int repeats, Fn&& fn) {
  uint64_t best = ~uint64_t{0};
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.ElapsedNanos());
  }
  return best;
}

struct Result {
  std::string name;
  uint64_t total_ns;
  double ns_per_key;
  double items_per_second;
};

/// The serving-overlap measurement (DESIGN.md §5): queries answered from
/// the current FilterStore snapshot while BuildShardedHabfAsync rebuilt a
/// replacement, i.e. the work a blocking rebuild would have stalled.
struct OverlapReport {
  uint64_t rebuild_ns = 0;
  size_t queries_served = 0;
  double queries_per_second = 0.0;
};

/// Routing balance under skewed key weights: max/mean shard weight of
/// uniform hash routing vs the two-choice directory, per workload.
struct RoutingBalanceReport {
  size_t skew_keys = 0;
  /// The single-hot-key workload runs at a tenth of the Zipf scale (its
  /// balance story is about the one hot key, not the tail) — reported
  /// separately so the hot_* ratios are never read at the wrong scale.
  size_t hot_keys = 0;
  double zipf_theta = 1.1;
  double hot_fraction = 0.10;
  double zipf_uniform_ratio = 0.0;
  double zipf_two_choice_ratio = 0.0;
  double hot_uniform_ratio = 0.0;
  double hot_two_choice_ratio = 0.0;
  uint64_t directory_build_ns = 0;  // bucketize + two-choice, Zipf set
};

/// Routes `keys` both ways and returns (uniform ratio, two-choice ratio).
std::pair<double, double> MeasureRoutingRatios(
    const std::vector<WeightedKey>& keys, size_t num_shards,
    uint64_t* build_ns) {
  std::vector<std::pair<std::string_view, double>> views;
  views.reserve(keys.size());
  for (const WeightedKey& wk : keys) views.emplace_back(wk.key, wk.cost);
  const double uniform =
      UniformRoutingMaxMeanRatio(views, kDefaultShardSalt, num_shards);
  Stopwatch watch;
  std::vector<double> bucket_weights(kDefaultRoutingBuckets, 0.0);
  for (const WeightedKey& wk : keys) {
    bucket_weights[RoutingBucketOfKey(wk.key, kDefaultShardSalt,
                                      kDefaultRoutingBuckets)] += wk.cost;
  }
  const RoutingDirectory directory = BuildTwoChoiceDirectory(
      bucket_weights, num_shards, kDefaultShardSalt);
  if (build_ns != nullptr) *build_ns = watch.ElapsedNanos();
  return {uniform, directory.MaxMeanWeightRatio()};
}

RoutingBalanceReport MeasureRoutingBalance(const Args& args) {
  RoutingBalanceReport report;
  report.skew_keys = args.skew_keys;
  const auto zipf =
      GenerateZipfWeightedKeys(args.skew_keys, report.zipf_theta, 0x21BF);
  std::tie(report.zipf_uniform_ratio, report.zipf_two_choice_ratio) =
      MeasureRoutingRatios(zipf, args.shards, &report.directory_build_ns);
  const auto hot = GenerateSingleHotKeySet(
      std::max<size_t>(args.skew_keys / 10, 1), report.hot_fraction, 0x407);
  report.hot_keys = hot.size();
  std::tie(report.hot_uniform_ratio, report.hot_two_choice_ratio) =
      MeasureRoutingRatios(hot, args.shards, nullptr);
  return report;
}

/// One compaction pass of the dynamic-tier scaling sweep: mutations were
/// aimed at exactly `dirty_shards` shards (rejection-sampled via ShardOf),
/// so rebuild cost should scale with the dirty-shard count, not the filter
/// size — the incremental-compaction claim of DESIGN.md §7.
struct DynamicCompactionSample {
  size_t dirty_shards = 0;
  size_t shards_rebuilt = 0;
  size_t keys_drained = 0;
  uint64_t rebuild_ns = 0;
};

/// The dynamic mixed-workload measurement (DESIGN.md §7): sustained
/// insert/delete/query throughput against DynamicShardedHabf across
/// background compactions, plus the per-compaction cost sweep.
struct DynamicWorkloadReport {
  size_t keys = 0;
  size_t shards = 0;
  double mutate_rate = 0.10;
  size_t total_ops = 0;
  uint64_t workload_ns = 0;
  double ops_per_second = 0.0;
  size_t workload_compactions = 0;
  std::vector<DynamicCompactionSample> sweep;
};

DynamicWorkloadReport MeasureDynamicWorkload(const Dataset& data,
                                             const Args& args,
                                             size_t effective_threads) {
  DynamicWorkloadReport report;
  // A quarter of the build-bench scale keeps the section's several shard
  // rebuilds proportionate to the rest of the bench's runtime.
  report.keys = std::min(std::max<size_t>(args.keys / 4, 1000),
                         data.positives.size());
  report.shards = args.shards;
  std::vector<std::string> positives(data.positives.begin(),
                                     data.positives.begin() + report.keys);
  HabfOptions options;
  options.total_bits = report.keys * 10;
  ShardedBuildOptions sharding;
  sharding.num_shards = args.shards;
  sharding.num_threads = effective_threads;
  DynamicOptions dynamic;
  dynamic.dirty_fraction_threshold = 0.0;
  dynamic.compaction_threads = effective_threads;
  DynamicShardedHabf filter(positives, {}, options, sharding, dynamic);

  // --- sustained mixed workload across compactions -------------------------
  // Rounds of (mutate_rate * batch) mutations + batched queries, with one
  // dirty-shard compaction per round running on a background thread while
  // the queries keep flowing — the serve-sim loop, measured.
  constexpr size_t kBatch = 1024;
  constexpr size_t kRounds = 3;
  std::vector<std::string_view> views(positives.begin(), positives.end());
  std::vector<uint8_t> out(kBatch);
  size_t cursor = 0;
  size_t serial = 0;
  Stopwatch workload_watch;
  for (size_t round = 0; round < kRounds; ++round) {
    const size_t mutations =
        static_cast<size_t>(report.mutate_rate * kBatch);
    for (size_t m = 0; m < mutations; ++m) {
      if (m % 2 == 0) {
        filter.Insert("bench-dyn-" + std::to_string(serial++));
      } else {
        filter.Remove(positives[(round * mutations + m) % positives.size()]);
      }
    }
    std::atomic<bool> done{false};
    std::thread compactor([&] {
      filter.CompactDirtyShards();
      done.store(true, std::memory_order_release);
    });
    do {
      const size_t count = std::min(kBatch, views.size() - cursor);
      filter.ContainsBatch(KeySpan(views.data() + cursor, count), out.data());
      cursor = (cursor + count) % views.size();
      report.total_ops += count;
    } while (!done.load(std::memory_order_acquire));
    compactor.join();
    report.total_ops += mutations;
  }
  report.workload_ns = workload_watch.ElapsedNanos();
  report.ops_per_second =
      static_cast<double>(report.total_ops) /
      (static_cast<double>(std::max<uint64_t>(report.workload_ns, 1)) * 1e-9);
  report.workload_compactions = filter.stats().compactions;

  // --- per-compaction cost vs dirty-shard count ----------------------------
  // Aim a fixed per-shard mutation dose at exactly k shards and compact:
  // rebuild_ns should grow ~linearly in k (only dirty shards rebuild).
  const size_t per_shard_dose =
      std::max<size_t>(report.keys / (20 * args.shards), 8);
  for (size_t k = 1; k <= args.shards; k *= 2) {
    for (size_t target = 0; target < k; ++target) {
      size_t planted = 0;
      for (size_t i = 0; planted < per_shard_dose; ++i) {
        const std::string key = "sweep-" + std::to_string(k) + "-" +
                                std::to_string(target) + "-" +
                                std::to_string(i);
        if (filter.ShardOf(key) == target) {
          filter.Insert(key);
          ++planted;
        }
      }
    }
    const CompactionReport pass = filter.CompactDirtyShards();
    DynamicCompactionSample sample;
    sample.dirty_shards = k;
    sample.shards_rebuilt = pass.shards_rebuilt;
    sample.keys_drained = pass.keys_drained;
    sample.rebuild_ns = pass.rebuild_ns;
    report.sweep.push_back(sample);
  }
  return report;
}

/// WAL durability cost (DESIGN.md §10): what an acknowledged mutation pays
/// for the fsynced delta log, how group commit amortizes that fsync across
/// concurrent committers, and what a crash-recovery Open costs (snapshot
/// parse + WAL replay + the collapsing checkpoint).
struct WalDurabilityReport {
  bool measured = false;  // false when the temp WAL dir is unusable
  size_t appends = 0;     // per serial run
  uint64_t fsync_append_ns = 0;    // serial Append loop, fsync per commit
  double fsync_appends_per_second = 0.0;
  uint64_t nofsync_append_ns = 0;  // same loop without fsync (framing cost)
  double nofsync_appends_per_second = 0.0;
  size_t group_threads = 0;
  size_t group_appends = 0;        // total across the committer threads
  uint64_t group_commit_ns = 0;
  double group_appends_per_second = 0.0;
  size_t recovery_base_keys = 0;
  size_t recovery_wal_records = 0;  // pending mutations Open had to replay
  uint64_t recovery_open_ns = 0;
  bool recovery_zero_fn = false;    // every replayed insert answered true
};

WalDurabilityReport MeasureWalDurability(const Dataset& data, const Args& args,
                                         size_t effective_threads) {
  WalDurabilityReport report;
  const std::string dir =
      "/tmp/habf_bench_wal_" + std::to_string(static_cast<long>(getpid()));
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) return report;

  // --- serial append cost, fsync on vs off --------------------------------
  // Append = Enqueue + SyncTo, exactly what an acknowledged Insert/Remove
  // pays. The fsync run is the durability price; the no-fsync run isolates
  // the framing + buffering cost around it.
  report.appends =
      std::min<size_t>(std::max<size_t>(args.keys / 100, 256), 2048);
  auto serial_run = [&](bool do_fsync) -> uint64_t {
    auto wal = DeltaWalWriter::Open(dir, 1, 1, do_fsync);
    if (wal == nullptr) return 0;
    Stopwatch watch;
    for (size_t i = 0; i < report.appends; ++i) {
      if (wal->Append("bench-wal-" + std::to_string(i), true) == 0) return 0;
    }
    const uint64_t ns = watch.ElapsedNanos();
    wal.reset();
    RemoveWalFilesBelow(dir, ~uint64_t{0});
    return ns;
  };
  report.fsync_append_ns = serial_run(/*do_fsync=*/true);
  report.nofsync_append_ns = serial_run(/*do_fsync=*/false);
  if (report.fsync_append_ns == 0 || report.nofsync_append_ns == 0) {
    return report;
  }
  const double appends_d = static_cast<double>(report.appends);
  report.fsync_appends_per_second =
      appends_d / (static_cast<double>(report.fsync_append_ns) * 1e-9);
  report.nofsync_appends_per_second =
      appends_d / (static_cast<double>(report.nofsync_append_ns) * 1e-9);

  // --- group commit under concurrent committers ---------------------------
  // T threads Enqueue + SyncTo concurrently; one flush leader fsyncs the
  // whole accumulated batch, so total wall time stays far below T serial
  // runs — the per-append cost *drops* under contention.
  report.group_threads = std::max<size_t>(effective_threads, 2);
  {
    auto wal = DeltaWalWriter::Open(dir, 1, 1, /*do_fsync=*/true);
    if (wal == nullptr) return report;
    const size_t per_thread =
        std::max<size_t>(report.appends / report.group_threads, 1);
    report.group_appends = per_thread * report.group_threads;
    std::vector<std::thread> committers;
    committers.reserve(report.group_threads);
    Stopwatch watch;
    for (size_t t = 0; t < report.group_threads; ++t) {
      committers.emplace_back([&, t] {
        for (size_t i = 0; i < per_thread; ++i) {
          const uint64_t seq =
              wal->Enqueue("bench-wal-" + std::to_string(t) + "-" +
                               std::to_string(i),
                           true);
          if (seq != 0) wal->SyncTo(seq);
        }
      });
    }
    for (std::thread& th : committers) th.join();
    report.group_commit_ns = watch.ElapsedNanos();
    const bool healthy = wal->healthy();
    wal.reset();
    RemoveWalFilesBelow(dir, ~uint64_t{0});
    if (!healthy) return report;
    report.group_appends_per_second =
        static_cast<double>(report.group_appends) /
        (static_cast<double>(std::max<uint64_t>(report.group_commit_ns, 1)) *
         1e-9);
  }

  // --- crash-recovery Open -------------------------------------------------
  // A durable filter with its initial checkpoint plus a pending WAL tail is
  // dropped without a final checkpoint (the crash), then Open() pays the
  // full restart: snapshot parse, replay, collapsing checkpoint.
  report.recovery_base_keys = std::min<size_t>(
      std::max<size_t>(args.keys / 8, 1000), data.positives.size());
  std::vector<std::string> base(
      data.positives.begin(),
      data.positives.begin() + report.recovery_base_keys);
  HabfOptions options;
  options.total_bits = report.recovery_base_keys * 10;
  ShardedBuildOptions sharding;
  sharding.num_shards = args.shards;
  sharding.num_threads = effective_threads;
  DynamicOptions dynamic;
  report.recovery_wal_records = std::min<size_t>(report.appends, 1024);
  {
    auto filter = std::make_unique<DynamicShardedHabf>(
        base, std::vector<WeightedKey>{}, options, sharding, dynamic);
    std::string error;
    if (!filter->EnableDurability(dir, &error)) return report;
    for (size_t i = 0; i < report.recovery_wal_records; ++i) {
      filter->Insert("bench-recover-" + std::to_string(i));
    }
  }
  Stopwatch open_watch;
  std::string error;
  auto reopened = DynamicShardedHabf::Open(dir, dynamic, &error);
  report.recovery_open_ns = open_watch.ElapsedNanos();
  if (reopened != nullptr) {
    report.measured = true;
    report.recovery_zero_fn = true;
    for (size_t i = 0; i < report.recovery_wal_records; ++i) {
      if (!reopened->MightContain("bench-recover-" + std::to_string(i))) {
        report.recovery_zero_fn = false;
        break;
      }
    }
  }
  reopened.reset();
  RemoveWalFilesBelow(dir, ~uint64_t{0});
  unlink(DynamicSnapshotPath(dir).c_str());
  rmdir(dir.c_str());
  return report;
}

/// End-to-end serving latency (DESIGN.md §11): an in-process net::Server
/// over a FilterStore snapshot, driven by the closed-loop net::RunLoadgen
/// across the loopback — the full wire cost (framing, CRC, coalescing, one
/// snapshot pin per batch) on top of the raw ContainsBatch numbers above.
struct ServerLatencyReport {
  bool measured = false;
  size_t member_keys = 0;
  size_t connections = 0;
  size_t keys_per_request = 0;
  size_t window = 0;
  uint64_t requests = 0;
  uint64_t keys_queried = 0;
  uint64_t false_negatives = 0;
  double rps = 0.0;
  double mean_ns = 0.0;
  uint64_t p50_ns = 0;
  uint64_t p90_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  uint64_t max_ns = 0;
};

ServerLatencyReport MeasureServerLatency(const Args& args,
                                         size_t effective_threads) {
  ServerLatencyReport report;
  // Preload WorkloadStreamKey members — the same deterministic stream the
  // loadgen draws from, so every query hits a member and a 0 answer is a
  // wire-level false negative (checked FATAL by the caller).
  report.member_keys = std::min<size_t>(args.keys, 200000);
  constexpr uint64_t kSeed = 42;
  std::vector<std::string> members;
  members.reserve(report.member_keys);
  for (uint64_t i = 0; i < report.member_keys; ++i) {
    members.push_back(WorkloadStreamKey(kSeed, i));
  }
  HabfOptions options;
  options.total_bits = report.member_keys * 10;
  ShardedBuildOptions sharding;
  sharding.num_shards = args.shards;
  sharding.num_threads = effective_threads;
  FilterStore<ShardedFilter<Habf>> store(
      BuildShardedHabf(members, {}, options, sharding));
  net::StoreBackend<ShardedFilter<Habf>> backend(&store);
  net::Server server(&backend, net::ServerOptions{});
  std::string error;
  if (!server.Start(&error)) return report;

  net::LoadgenOptions load;
  load.port = server.port();
  load.connections = 4;
  load.keys_per_request = 32;
  load.max_in_flight = 8;
  load.duration = std::chrono::milliseconds(1000);
  load.key_seed = kSeed;
  load.key_space = report.member_keys;
  load.expect_members = report.member_keys;
  net::LoadgenReport result;
  const bool ok = net::RunLoadgen(load, &result, &error);
  server.Shutdown();
  if (!ok) return report;

  report.measured = true;
  report.connections = load.connections;
  report.keys_per_request = load.keys_per_request;
  report.window = load.max_in_flight;
  report.requests = result.responses_received;
  report.keys_queried = result.keys_queried;
  report.false_negatives = result.false_negatives;
  report.rps = result.achieved_rps;
  report.mean_ns = result.latency_ns.Mean();
  report.p50_ns = result.latency_ns.ValueAtPercentile(50);
  report.p90_ns = result.latency_ns.ValueAtPercentile(90);
  report.p99_ns = result.latency_ns.ValueAtPercentile(99);
  report.p999_ns = result.latency_ns.ValueAtPercentile(99.9);
  report.max_ns = result.latency_ns.max();
  return report;
}

/// Backpressure governance under a deliberately slow consumer (DESIGN.md
/// §11): phase A parks a tiny-receive-window client behind a pipeline of
/// stats requests (~20x response amplification) and verifies the unsent
/// output tail stays bounded by the hard cap while the watermarks pause and
/// resume reads; phase B shrinks the cap so the same abuse must evict. The
/// caller treats an unbounded buffer or a missing eviction as FATAL — this
/// section is a guardrail, not just a measurement.
struct ServerBackpressureReport {
  bool measured = false;
  size_t slow_frames = 0;          // phase A pipelined stats requests
  uint64_t responses_drained = 0;  // phase A responses read back
  uint64_t pauses = 0;
  uint64_t resumes = 0;
  uint64_t peak_unsent_bytes = 0;
  size_t hard_cap_bytes = 0;    // phase A cap the peak is judged against
  bool bounded = false;         // peak <= cap + one read budget of slack
  size_t evict_frames = 0;      // phase B pipelined stats requests
  uint64_t evictions_overflow = 0;  // phase B: must be exactly 1
};

/// One named counter over a throwaway stats connection.
bool FetchServerStat(uint16_t port, std::string_view name, uint64_t* value) {
  net::BlockingClient client;
  std::string error;
  if (!client.Connect("127.0.0.1", port, &error)) return false;
  std::vector<std::pair<std::string, uint64_t>> entries;
  if (!client.GetStats(&entries, &error)) return false;
  for (const auto& entry : entries) {
    if (entry.first == name) {
      *value = entry.second;
      return true;
    }
  }
  return false;
}

bool PollServerStatAtLeast(uint16_t port, std::string_view name,
                           uint64_t target, uint64_t* value) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    if (FetchServerStat(port, name, value) && *value >= target) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

ServerBackpressureReport MeasureServerBackpressure() {
  ServerBackpressureReport report;
  // A single preloaded key is enough: the slow consumer pipelines kOpStats
  // frames, whose fixed ~570-byte responses amplify a 17-byte request ~20x
  // — the cheapest way for a client to grow the server's output tail.
  std::vector<std::string> members = {WorkloadStreamKey(42, 0)};
  HabfOptions options;
  options.total_bits = 1 << 12;
  FilterStore<ShardedFilter<Habf>> store(
      BuildShardedHabf(members, {}, options, ShardedBuildOptions{}));
  net::StoreBackend<ShardedFilter<Habf>> backend(&store);

  const auto stats_frames = [](uint64_t first_id, size_t count) {
    std::string bytes;
    for (size_t i = 0; i < count; ++i) {
      net::AppendFrame(&bytes, first_id + i, net::kOpStats,
                       std::string_view());
    }
    return bytes;
  };

  // --- phase A: bounded buffering + pause/resume under a slow consumer ---
  {
    net::ServerOptions server_options;
    server_options.num_workers = 1;
    server_options.so_sndbuf_bytes = 4096;  // kernel can't hide the backlog
    server_options.out_high_watermark = 32 * 1024;
    server_options.out_low_watermark = 8 * 1024;
    server_options.out_hard_cap = 256 * 1024;
    server_options.read_budget_bytes = 4096;
    report.hard_cap_bytes = server_options.out_hard_cap;
    net::Server server(&backend, server_options);
    std::string error;
    if (!server.Start(&error)) return report;

    net::BlockingClient slow;
    slow.set_recv_buffer_bytes(4096);
    if (!slow.Connect("127.0.0.1", server.port(), &error)) return report;
    report.slow_frames = 2000;  // ~1.1MB of responses vs a 256KB cap
    if (!slow.RawSend(stats_frames(1, report.slow_frames), &error)) {
      return report;
    }
    uint64_t pauses = 0;
    if (!PollServerStatAtLeast(server.port(), "backpressure_pauses", 1,
                               &pauses)) {
      return report;
    }
    // Drain everything: the pause must resume and every response arrive.
    for (size_t i = 0; i < report.slow_frames; ++i) {
      net::OwnedFrame frame;
      if (!slow.ReadFrame(&frame, &error)) break;
      if (frame.op != net::kOpStatsResponse) break;
      ++report.responses_drained;
    }
    FetchServerStat(server.port(), "backpressure_pauses", &report.pauses);
    FetchServerStat(server.port(), "backpressure_resumes", &report.resumes);
    FetchServerStat(server.port(), "out_buffer_peak_bytes",
                    &report.peak_unsent_bytes);
    server.Shutdown();
    // Bounded: the peak may overshoot the watermark by what one read
    // budget's worth of requests amplifies to, never past the hard cap.
    report.bounded =
        report.responses_drained == report.slow_frames &&
        report.resumes >= 1 &&
        report.peak_unsent_bytes <= report.hard_cap_bytes + 64 * 1024;
  }

  // --- phase B: the hard cap evicts what the watermarks cannot absorb ----
  {
    net::ServerOptions server_options;
    server_options.num_workers = 1;
    server_options.so_sndbuf_bytes = 4096;
    server_options.out_high_watermark = 32 * 1024;
    server_options.out_low_watermark = 1024;
    server_options.out_hard_cap = 32 * 1024;  // == high: cap wins the race
    net::Server server(&backend, server_options);
    std::string error;
    if (!server.Start(&error)) return report;

    net::BlockingClient hostile;
    hostile.set_recv_buffer_bytes(4096);
    if (!hostile.Connect("127.0.0.1", server.port(), &error)) return report;
    report.evict_frames = 500;  // ~290KB of responses vs a 32KB cap
    if (!hostile.RawSend(stats_frames(1, report.evict_frames), &error)) {
      return report;
    }
    PollServerStatAtLeast(server.port(), "evictions_output_overflow", 1,
                          &report.evictions_overflow);
    server.Shutdown();
  }

  report.measured = true;
  return report;
}

/// Partition-memory comparison of the zero-copy sharded build against the
/// old copying partition: exact logical byte counts plus per-build peak-RSS
/// deltas measured in forked children.
struct MemoryReport {
  size_t input_key_bytes = 0;      // key payload held by the caller
  size_t span_partition_bytes = 0; // views + shard ids + offsets
  size_t copy_partition_bytes = 0; // per-shard string/WeightedKey copies
  /// Per-build peak RSS growth, each measured in its own forked child so
  /// both builds start from the identical heap snapshot (in-process, the
  /// second build hides its allocations in pages the first already faulted
  /// in). 0 when fork//proc is unavailable.
  size_t peak_rss_delta_span_build = 0;
  size_t peak_rss_delta_copy_build = 0;
};

/// Runs `build` in a forked child and returns the child's peak-RSS growth
/// (VmHWM reset via clear_refs, then peak - rss_before). COW makes the
/// parent's dataset free to share; every build allocation faults private
/// pages that count toward the delta.
size_t PeakRssDeltaInChild(const std::function<void()>& build) {
  int fds[2];
  if (pipe(fds) != 0) return 0;
  const pid_t pid = fork();
  if (pid == 0) {
    close(fds[0]);
    // Without the watermark reset the reading would be the inherited
    // lifetime peak (dataset generation included), not this build's — keep
    // the documented "0 when unavailable" instead of recording garbage.
    const bool reset_ok = ResetPeakResidentSetBytes();
    const size_t before = ReadResidentSetBytes();
    build();
    const size_t peak = ReadPeakResidentSetBytes();
    const size_t delta =
        reset_ok && peak > before ? peak - before : 0;
    ssize_t ignored = write(fds[1], &delta, sizeof(delta));
    (void)ignored;
    _exit(0);
  }
  close(fds[1]);
  size_t delta = 0;
  if (pid < 0 || read(fds[0], &delta, sizeof(delta)) != sizeof(delta)) {
    delta = 0;
  }
  close(fds[0]);
  if (pid > 0) waitpid(pid, nullptr, 0);
  return delta;
}

void PrintResults(const std::vector<Result>& results, const Args& args,
                  size_t effective_threads, double speedup,
                  const MemoryReport& memory, const OverlapReport& overlap,
                  const RoutingBalanceReport& routing,
                  const DynamicWorkloadReport& dynamic,
                  const WalDurabilityReport& wal,
                  const ServerLatencyReport& serve,
                  const ServerBackpressureReport& backpressure) {
  if (args.json) {
    std::printf("{\n  \"context\": {\"keys\": %zu, \"shards\": %zu, "
                "\"threads\": %zu, \"repeats\": %d},\n  \"benchmarks\": [\n",
                args.keys, args.shards, effective_threads, args.repeats);
    for (size_t i = 0; i < results.size(); ++i) {
      std::printf("    {\"name\": \"%s\", \"real_time\": %.1f, "
                  "\"time_unit\": \"ns\", \"ns_per_key\": %.3f, "
                  "\"items_per_second\": %.1f}%s\n",
                  results[i].name.c_str(),
                  static_cast<double>(results[i].total_ns),
                  results[i].ns_per_key, results[i].items_per_second,
                  i + 1 < results.size() ? "," : "");
    }
    std::printf("  ],\n  \"construction_speedup\": %.3f,\n", speedup);
    std::printf(
        "  \"partition_memory\": {\n"
        "    \"input_key_bytes\": %zu,\n"
        "    \"span_partition_bytes\": %zu,\n"
        "    \"copy_partition_bytes\": %zu,\n"
        "    \"copy_over_span_ratio\": %.2f,\n"
        "    \"peak_rss_delta_span_build\": %zu,\n"
        "    \"peak_rss_delta_copy_build\": %zu\n  },\n",
        memory.input_key_bytes, memory.span_partition_bytes,
        memory.copy_partition_bytes,
        static_cast<double>(memory.copy_partition_bytes) /
            static_cast<double>(std::max<size_t>(memory.span_partition_bytes,
                                                 1)),
        memory.peak_rss_delta_span_build, memory.peak_rss_delta_copy_build);
    std::printf(
        "  \"serve_during_rebuild\": {\n"
        "    \"rebuild_ns\": %llu,\n"
        "    \"queries_served\": %zu,\n"
        "    \"queries_per_second_during_rebuild\": %.1f\n  },\n",
        static_cast<unsigned long long>(overlap.rebuild_ns),
        overlap.queries_served, overlap.queries_per_second);
    std::printf(
        "  \"routing_balance\": {\n"
        "    \"skew_keys\": %zu,\n"
        "    \"shards\": %zu,\n"
        "    \"routing_buckets\": %zu,\n"
        "    \"zipf_theta\": %.2f,\n"
        "    \"zipf_uniform_max_mean_ratio\": %.4f,\n"
        "    \"zipf_two_choice_max_mean_ratio\": %.4f,\n"
        "    \"hot_keys\": %zu,\n"
        "    \"hot_key_fraction\": %.2f,\n"
        "    \"hot_uniform_max_mean_ratio\": %.4f,\n"
        "    \"hot_two_choice_max_mean_ratio\": %.4f,\n"
        "    \"directory_build_ns\": %llu\n  },\n",
        routing.skew_keys, args.shards, kDefaultRoutingBuckets,
        routing.zipf_theta, routing.zipf_uniform_ratio,
        routing.zipf_two_choice_ratio, routing.hot_keys,
        routing.hot_fraction, routing.hot_uniform_ratio,
        routing.hot_two_choice_ratio,
        static_cast<unsigned long long>(routing.directory_build_ns));
    std::printf(
        "  \"dynamic_mixed_workload\": {\n"
        "    \"keys\": %zu,\n"
        "    \"shards\": %zu,\n"
        "    \"mutate_rate\": %.2f,\n"
        "    \"total_ops\": %zu,\n"
        "    \"workload_ns\": %llu,\n"
        "    \"sustained_ops_per_second\": %.1f,\n"
        "    \"compactions_during_workload\": %zu,\n"
        "    \"per_compaction\": [\n",
        dynamic.keys, dynamic.shards, dynamic.mutate_rate, dynamic.total_ops,
        static_cast<unsigned long long>(dynamic.workload_ns),
        dynamic.ops_per_second, dynamic.workload_compactions);
    for (size_t i = 0; i < dynamic.sweep.size(); ++i) {
      const DynamicCompactionSample& s = dynamic.sweep[i];
      std::printf(
          "      {\"dirty_shards\": %zu, \"shards_rebuilt\": %zu, "
          "\"keys_drained\": %zu, \"rebuild_ns\": %llu}%s\n",
          s.dirty_shards, s.shards_rebuilt, s.keys_drained,
          static_cast<unsigned long long>(s.rebuild_ns),
          i + 1 < dynamic.sweep.size() ? "," : "");
    }
    std::printf("    ]\n  },\n");
    std::printf(
        "  \"wal_durability\": {\n"
        "    \"measured\": %s,\n"
        "    \"appends\": %zu,\n"
        "    \"fsync_append_ns\": %llu,\n"
        "    \"fsync_ns_per_append\": %.1f,\n"
        "    \"fsync_appends_per_second\": %.1f,\n"
        "    \"nofsync_ns_per_append\": %.1f,\n"
        "    \"nofsync_appends_per_second\": %.1f,\n"
        "    \"group_commit_threads\": %zu,\n"
        "    \"group_commit_appends\": %zu,\n"
        "    \"group_commit_ns\": %llu,\n"
        "    \"group_commit_appends_per_second\": %.1f,\n"
        "    \"recovery_base_keys\": %zu,\n"
        "    \"recovery_wal_records\": %zu,\n"
        "    \"recovery_open_ns\": %llu\n  },\n",
        wal.measured ? "true" : "false", wal.appends,
        static_cast<unsigned long long>(wal.fsync_append_ns),
        static_cast<double>(wal.fsync_append_ns) /
            static_cast<double>(std::max<size_t>(wal.appends, 1)),
        wal.fsync_appends_per_second,
        static_cast<double>(wal.nofsync_append_ns) /
            static_cast<double>(std::max<size_t>(wal.appends, 1)),
        wal.nofsync_appends_per_second, wal.group_threads, wal.group_appends,
        static_cast<unsigned long long>(wal.group_commit_ns),
        wal.group_appends_per_second, wal.recovery_base_keys,
        wal.recovery_wal_records,
        static_cast<unsigned long long>(wal.recovery_open_ns));
    std::printf(
        "  \"server_latency\": {\n"
        "    \"measured\": %s,\n"
        "    \"member_keys\": %zu,\n"
        "    \"connections\": %zu,\n"
        "    \"keys_per_request\": %zu,\n"
        "    \"closed_loop_window\": %zu,\n"
        "    \"requests\": %llu,\n"
        "    \"keys_queried\": %llu,\n"
        "    \"false_negatives\": %llu,\n"
        "    \"requests_per_second\": %.1f,\n"
        "    \"latency_mean_ns\": %.1f,\n"
        "    \"latency_p50_ns\": %llu,\n"
        "    \"latency_p90_ns\": %llu,\n"
        "    \"latency_p99_ns\": %llu,\n"
        "    \"latency_p999_ns\": %llu,\n"
        "    \"latency_max_ns\": %llu\n  },\n",
        serve.measured ? "true" : "false", serve.member_keys,
        serve.connections, serve.keys_per_request, serve.window,
        static_cast<unsigned long long>(serve.requests),
        static_cast<unsigned long long>(serve.keys_queried),
        static_cast<unsigned long long>(serve.false_negatives), serve.rps,
        serve.mean_ns, static_cast<unsigned long long>(serve.p50_ns),
        static_cast<unsigned long long>(serve.p90_ns),
        static_cast<unsigned long long>(serve.p99_ns),
        static_cast<unsigned long long>(serve.p999_ns),
        static_cast<unsigned long long>(serve.max_ns));
    std::printf(
        "  \"server_backpressure\": {\n"
        "    \"measured\": %s,\n"
        "    \"slow_consumer_frames\": %zu,\n"
        "    \"responses_drained\": %llu,\n"
        "    \"backpressure_pauses\": %llu,\n"
        "    \"backpressure_resumes\": %llu,\n"
        "    \"out_buffer_peak_bytes\": %llu,\n"
        "    \"out_hard_cap_bytes\": %zu,\n"
        "    \"memory_bounded\": %s,\n"
        "    \"eviction_frames\": %zu,\n"
        "    \"evictions_output_overflow\": %llu\n  }\n}\n",
        backpressure.measured ? "true" : "false", backpressure.slow_frames,
        static_cast<unsigned long long>(backpressure.responses_drained),
        static_cast<unsigned long long>(backpressure.pauses),
        static_cast<unsigned long long>(backpressure.resumes),
        static_cast<unsigned long long>(backpressure.peak_unsent_bytes),
        backpressure.hard_cap_bytes,
        backpressure.bounded ? "true" : "false", backpressure.evict_frames,
        static_cast<unsigned long long>(backpressure.evictions_overflow));
    return;
  }
  std::printf("keys=%zu shards=%zu threads=%zu repeats=%d\n", args.keys,
              args.shards, effective_threads, args.repeats);
  for (const Result& r : results) {
    std::printf("%-34s %12.1f ms  %8.1f ns/key  %12.0f keys/s\n",
                r.name.c_str(), static_cast<double>(r.total_ns) / 1e6,
                r.ns_per_key, r.items_per_second);
  }
  std::printf("parallel construction speedup: %.2fx\n", speedup);
  std::printf(
      "partition memory: input keys %.1f MiB; span views %.1f MiB vs key "
      "copies %.1f MiB (%.1fx); per-build peak RSS delta %.1f MiB (span) "
      "vs %.1f MiB (copy)\n",
      memory.input_key_bytes / 1048576.0,
      memory.span_partition_bytes / 1048576.0,
      memory.copy_partition_bytes / 1048576.0,
      static_cast<double>(memory.copy_partition_bytes) /
          static_cast<double>(std::max<size_t>(memory.span_partition_bytes,
                                               1)),
      memory.peak_rss_delta_span_build / 1048576.0,
      memory.peak_rss_delta_copy_build / 1048576.0);
  std::printf(
      "serve during rebuild: %zu queries answered from the old snapshot in "
      "%.1f ms of async rebuild (%.0f queries/s that a blocking rebuild "
      "would have stalled)\n",
      overlap.queries_served,
      static_cast<double>(overlap.rebuild_ns) / 1e6,
      overlap.queries_per_second);
  std::printf(
      "routing balance (%zu shards, %zu buckets): Zipf(%.1f) over %zu keys "
      "max/mean %.3f uniform vs %.3f two-choice; single-hot-key(%.0f%%) "
      "over %zu keys %.3f uniform vs %.3f two-choice; directory built in "
      "%.2f ms\n",
      args.shards, kDefaultRoutingBuckets, routing.zipf_theta,
      routing.skew_keys, routing.zipf_uniform_ratio,
      routing.zipf_two_choice_ratio, routing.hot_fraction * 100,
      routing.hot_keys, routing.hot_uniform_ratio,
      routing.hot_two_choice_ratio,
      static_cast<double>(routing.directory_build_ns) / 1e6);
  std::printf(
      "dynamic mixed workload (%zu keys, %zu shards, %.0f%% mutations): "
      "%.0f ops/s sustained across %zu compactions\n",
      dynamic.keys, dynamic.shards, dynamic.mutate_rate * 100,
      dynamic.ops_per_second, dynamic.workload_compactions);
  for (const DynamicCompactionSample& s : dynamic.sweep) {
    std::printf(
        "  compaction with %zu dirty shard(s): rebuilt %zu/%zu in %.1f ms "
        "(%zu keys drained)\n",
        s.dirty_shards, s.shards_rebuilt, dynamic.shards,
        static_cast<double>(s.rebuild_ns) / 1e6, s.keys_drained);
  }
  if (!wal.measured) {
    std::printf("wal durability: not measured (temp WAL dir unusable)\n");
  } else {
    std::printf(
        "wal durability: %.1f us/append fsynced (%.0f/s) vs %.2f us/append "
        "unfsynced (%.0f/s); group commit with %zu committers %.0f "
        "appends/s\n",
        static_cast<double>(wal.fsync_append_ns) /
            static_cast<double>(std::max<size_t>(wal.appends, 1)) / 1e3,
        wal.fsync_appends_per_second,
        static_cast<double>(wal.nofsync_append_ns) /
            static_cast<double>(std::max<size_t>(wal.appends, 1)) / 1e3,
        wal.nofsync_appends_per_second, wal.group_threads,
        wal.group_appends_per_second);
    std::printf(
        "crash recovery: Open() over %zu base keys + %zu pending WAL records "
        "in %.1f ms (snapshot parse + replay + collapsing checkpoint)\n",
        wal.recovery_base_keys, wal.recovery_wal_records,
        static_cast<double>(wal.recovery_open_ns) / 1e6);
  }
  if (!serve.measured) {
    std::printf("server latency: not measured (loopback server unavailable)\n");
    return;
  }
  std::printf(
      "server latency: %zu conns x window %zu, %zu keys/request over "
      "loopback: %.0f req/s, %llu false negatives; mean %.1f us, p50 %.1f "
      "us, p90 %.1f us, p99 %.1f us, p99.9 %.1f us, max %.1f us\n",
      serve.connections, serve.window, serve.keys_per_request, serve.rps,
      static_cast<unsigned long long>(serve.false_negatives),
      serve.mean_ns / 1e3, static_cast<double>(serve.p50_ns) / 1e3,
      static_cast<double>(serve.p90_ns) / 1e3,
      static_cast<double>(serve.p99_ns) / 1e3,
      static_cast<double>(serve.p999_ns) / 1e3,
      static_cast<double>(serve.max_ns) / 1e3);
  if (backpressure.measured) {
    std::printf(
        "server backpressure: slow consumer pipelined %zu stats requests: "
        "peak unsent %.1f KiB (cap %.1f KiB, bounded=%s), %llu pauses / "
        "%llu resumes, %llu/%zu responses drained; hard-cap abuse evicted "
        "%llu connection(s)\n",
        backpressure.slow_frames, backpressure.peak_unsent_bytes / 1024.0,
        backpressure.hard_cap_bytes / 1024.0,
        backpressure.bounded ? "yes" : "NO",
        static_cast<unsigned long long>(backpressure.pauses),
        static_cast<unsigned long long>(backpressure.resumes),
        static_cast<unsigned long long>(backpressure.responses_drained),
        backpressure.slow_frames,
        static_cast<unsigned long long>(backpressure.evictions_overflow));
  } else {
    std::printf(
        "server backpressure: not measured (loopback server unavailable)\n");
  }
}

/// The PR-2 copying partition, kept as the memory-comparison reference: a
/// full per-shard copy of every key (the ~2x peak the zero-copy partition
/// eliminated), then one serial build per shard on the same apportioned
/// budgets. Returns the logical partition bytes through *partition_bytes.
std::vector<Habf> BuildShardedCopyingReference(
    const std::vector<std::string>& positives,
    const std::vector<WeightedKey>& negatives, const HabfOptions& options,
    size_t num_shards, uint64_t salt, size_t* partition_bytes) {
  std::vector<std::vector<std::string>> shard_positives(num_shards);
  std::vector<std::vector<WeightedKey>> shard_negatives(num_shards);
  for (const std::string& key : positives) {
    shard_positives[ShardOfKey(key, salt, num_shards)].push_back(key);
  }
  for (const WeightedKey& wk : negatives) {
    shard_negatives[ShardOfKey(wk.key, salt, num_shards)].push_back(wk);
  }
  *partition_bytes = 0;
  std::vector<size_t> pos_counts(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    pos_counts[s] = shard_positives[s].size();
    for (const std::string& key : shard_positives[s]) {
      *partition_bytes += sizeof(std::string) + key.size();
    }
    for (const WeightedKey& wk : shard_negatives[s]) {
      *partition_bytes += sizeof(WeightedKey) + wk.key.size();
    }
  }
  const std::vector<size_t> bits =
      ApportionShardBits(options.total_bits, pos_counts);
  std::vector<Habf> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    HabfOptions shard_options = options;
    shard_options.total_bits = bits[s];
    shard_options.seed = options.seed + s;
    shards.push_back(
        Habf::Build(shard_positives[s], shard_negatives[s], shard_options));
  }
  return shards;
}

}  // namespace
}  // namespace habf

int main(int argc, char** argv) {
  using namespace habf;
  const Args args = ParseArgs(argc, argv);

  const unsigned hw = std::thread::hardware_concurrency();
  const size_t effective_threads =
      args.threads != 0 ? args.threads : (hw == 0 ? 1 : hw);

  DatasetOptions data_options;
  data_options.num_positives = args.keys;
  data_options.num_negatives = args.keys;
  data_options.seed = 99;
  const Dataset data = GenerateShallaLike(data_options);

  HabfOptions options;
  options.total_bits = args.keys * 10;

  ShardedBuildOptions serial_sharding;
  serial_sharding.num_shards = args.shards;
  serial_sharding.num_threads = 1;
  ShardedBuildOptions parallel_sharding = serial_sharding;
  parallel_sharding.num_threads = effective_threads;

  std::vector<Result> results;
  const double keys_d = static_cast<double>(args.keys);
  auto record = [&](std::string name, uint64_t ns, double items) {
    results.push_back({std::move(name), ns, static_cast<double>(ns) / items,
                       items / (static_cast<double>(ns) * 1e-9)});
    (void)keys_d;
  };

  // --- partition memory: zero-copy span build vs copying reference --------
  // Span build first: VmHWM is monotone, so whatever the copying build
  // pushes the peak *beyond* the span build's is the copy overhead.
  MemoryReport memory;
  for (const auto& key : data.positives) memory.input_key_bytes += key.size();
  for (const auto& wk : data.negatives) {
    memory.input_key_bytes += wk.key.size();
  }
  memory.span_partition_bytes =
      data.positives.size() *
          (sizeof(std::string_view) + sizeof(uint32_t)) +
      data.negatives.size() * (sizeof(WeightedKeyView) + sizeof(uint32_t)) +
      2 * (args.shards + 1) * sizeof(size_t);
  // Tighten the parent heap once, then fork one child per build: both
  // children inherit the same heap snapshot, so their VmHWM deltas are
  // directly comparable.
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  memory.peak_rss_delta_span_build = PeakRssDeltaInChild([&] {
    DoNotOptimizeAway(BuildShardedHabf(data.positives, data.negatives,
                                       options, serial_sharding));
  });
  memory.peak_rss_delta_copy_build = PeakRssDeltaInChild([&] {
    size_t bytes = 0;
    DoNotOptimizeAway(BuildShardedCopyingReference(
        data.positives, data.negatives, options, args.shards,
        kDefaultShardSalt, &bytes));
  });
  // The copy build in the child cannot report back its logical byte count
  // through DoNotOptimizeAway, so compute it (cheaply, no builds) here.
  memory.copy_partition_bytes = 0;
  for (const auto& key : data.positives) {
    memory.copy_partition_bytes += sizeof(std::string) + key.size();
  }
  for (const auto& wk : data.negatives) {
    memory.copy_partition_bytes += sizeof(WeightedKey) + wk.key.size();
  }

  // --- construction: unsharded vs sharded-serial vs sharded-parallel ------
  const uint64_t unsharded_ns = BestOf(args.repeats, [&] {
    DoNotOptimizeAway(Habf::Build(data.positives, data.negatives, options));
  });
  record("BM_HabfBuildUnsharded", unsharded_ns, keys_d);

  const uint64_t serial_ns = BestOf(args.repeats, [&] {
    DoNotOptimizeAway(
        BuildShardedHabf(data.positives, data.negatives, options,
                         serial_sharding));
  });
  record("BM_HabfBuildSharded_serial", serial_ns, keys_d);

  const uint64_t parallel_ns = BestOf(args.repeats, [&] {
    DoNotOptimizeAway(
        BuildShardedHabf(data.positives, data.negatives, options,
                         parallel_sharding));
  });
  record("BM_HabfBuildSharded_parallel", parallel_ns, keys_d);

  const double speedup = static_cast<double>(serial_ns) /
                         static_cast<double>(std::max<uint64_t>(parallel_ns, 1));

  // --- query: unsharded native batch vs sharded grouped batch -------------
  const Habf unsharded =
      Habf::Build(data.positives, data.negatives, options);
  auto sharded = BuildShardedHabf(data.positives, data.negatives,
                                  options, parallel_sharding);

  std::vector<std::string_view> mixed;
  mixed.reserve(2 * args.keys);
  for (size_t i = 0; i < data.positives.size(); ++i) {
    mixed.push_back(data.positives[i]);
    mixed.push_back(data.negatives[i].key);
  }

  constexpr size_t kBatch = 256;
  auto batch_sweep = [&](const auto& filter) {
    std::vector<uint8_t> out(kBatch);
    size_t positives = 0;
    for (size_t base = 0; base < mixed.size(); base += kBatch) {
      const size_t count = std::min(kBatch, mixed.size() - base);
      positives +=
          filter.ContainsBatch(KeySpan(mixed.data() + base, count),
                               out.data());
    }
    DoNotOptimizeAway(positives);
  };

  const double mixed_d = static_cast<double>(mixed.size());
  record("BM_HabfBatchUnsharded",
         BestOf(args.repeats, [&] { batch_sweep(unsharded); }), mixed_d);
  record("BM_HabfBatchSharded",
         BestOf(args.repeats, [&] { batch_sweep(sharded); }), mixed_d);

  // Pooled per-shard fan-out vs the serial grouped path, at a batch size
  // large enough (8192) for the per-shard groups to amortize the task
  // hand-off. The fan-out only helps with real cores; recorded either way.
  constexpr size_t kLargeBatch = 8192;
  auto large_batch_sweep = [&](const auto& filter) {
    std::vector<uint8_t> out(kLargeBatch);
    size_t positives = 0;
    for (size_t base = 0; base < mixed.size(); base += kLargeBatch) {
      const size_t count = std::min(kLargeBatch, mixed.size() - base);
      positives += filter.ContainsBatch(
          KeySpan(mixed.data() + base, count), out.data());
    }
    DoNotOptimizeAway(positives);
  };
  record("BM_HabfBatchShardedLarge",
         BestOf(args.repeats, [&] { large_batch_sweep(sharded); }), mixed_d);
  {
    ThreadPool query_pool(effective_threads <= 1 ? 0 : effective_threads);
    auto pooled = BuildShardedHabf(data.positives, data.negatives, options,
                                   parallel_sharding);
    pooled.SetQueryPool(&query_pool, /*min_parallel_keys=*/kLargeBatch);
    record("BM_HabfBatchShardedLargePooled",
           BestOf(args.repeats, [&] { large_batch_sweep(pooled); }), mixed_d);
  }

  // Scalar routing path for reference.
  record("BM_HabfScalarSharded", BestOf(args.repeats, [&] {
           size_t positives = 0;
           for (const auto& key : mixed) {
             positives += sharded.MightContain(key) ? 1 : 0;
           }
           DoNotOptimizeAway(positives);
         }),
         mixed_d);

  // Sanity: the sharded filter must keep the one-sided guarantee.
  if (CountFalseNegatives(sharded, data.positives) != 0) {
    std::fprintf(stderr, "FATAL: sharded filter dropped a positive key\n");
    return 1;
  }

  // --- serving overlap: queries answered during an async rebuild ----------
  // The hot-swap loop of DESIGN.md §5: the serving filter moves into a
  // FilterStore, BuildShardedHabfAsync rebuilds a replacement (fresh seed,
  // so it is a genuinely different filter), and the main thread keeps
  // answering batched queries from the pinned current snapshot until the
  // rebuild completes — every one of those queries is work a blocking
  // rebuild would have stalled.
  OverlapReport overlap;
  {
    FilterStore<ShardedFilter<Habf>> store(std::move(sharded));
    HabfOptions rebuild_options = options;
    rebuild_options.seed = options.seed + 1;
    std::vector<uint8_t> out(kLargeBatch);
    size_t base = 0;
    Stopwatch rebuild_watch;
    BuildHandle handle = BuildShardedHabfAsync(
        data.positives, data.negatives, rebuild_options, parallel_sharding);
    do {
      const auto snapshot = store.Acquire();
      const size_t count = std::min(kLargeBatch, mixed.size() - base);
      snapshot.filter->ContainsBatch(KeySpan(mixed.data() + base, count),
                                     out.data());
      overlap.queries_served += count;
      base = (base + count) % mixed.size();
    } while (!handle.Ready());
    overlap.rebuild_ns = rebuild_watch.ElapsedNanos();
    store.Publish(handle.TakeResult());
    overlap.queries_per_second =
        static_cast<double>(overlap.queries_served) /
        (static_cast<double>(std::max<uint64_t>(overlap.rebuild_ns, 1)) *
         1e-9);
    // The swapped-in filter serves correctly too.
    if (CountFalseNegatives(*store.Acquire().filter, data.positives) != 0) {
      std::fprintf(stderr,
                   "FATAL: swapped-in rebuilt filter dropped a positive "
                   "key\n");
      return 1;
    }
  }

  // --- routing balance under skewed key weights ---------------------------
  const RoutingBalanceReport routing = MeasureRoutingBalance(args);

  // --- dynamic tier: mixed workload + dirty-shard compaction sweep --------
  const DynamicWorkloadReport dynamic_workload =
      MeasureDynamicWorkload(data, args, effective_threads);
  for (const DynamicCompactionSample& sample : dynamic_workload.sweep) {
    if (sample.shards_rebuilt != sample.dirty_shards) {
      std::fprintf(stderr,
                   "FATAL: compaction rebuilt %zu shards but only %zu were "
                   "dirty\n",
                   sample.shards_rebuilt, sample.dirty_shards);
      return 1;
    }
  }

  // --- durability: WAL append cost + crash-recovery Open ------------------
  const WalDurabilityReport wal_durability =
      MeasureWalDurability(data, args, effective_threads);
  if (wal_durability.measured && !wal_durability.recovery_zero_fn) {
    std::fprintf(stderr,
                 "FATAL: crash-recovery Open dropped an acknowledged "
                 "mutation\n");
    return 1;
  }

  // --- serving: closed-loop wire latency against an in-process server ----
  const ServerLatencyReport server_latency =
      MeasureServerLatency(args, effective_threads);
  if (server_latency.measured && server_latency.false_negatives != 0) {
    std::fprintf(stderr,
                 "FATAL: wire query returned 0 for a preloaded member "
                 "(one-sidedness violated across the protocol)\n");
    return 1;
  }

  // --- serving: backpressure governance under a slow/hostile consumer ----
  const ServerBackpressureReport server_backpressure =
      MeasureServerBackpressure();
  if (server_backpressure.measured && !server_backpressure.bounded) {
    std::fprintf(stderr,
                 "FATAL: slow consumer grew the unsent output tail past the "
                 "hard cap (peak %llu bytes, cap %zu) or lost responses "
                 "(%llu/%zu drained) — per-connection memory is unbounded\n",
                 static_cast<unsigned long long>(
                     server_backpressure.peak_unsent_bytes),
                 server_backpressure.hard_cap_bytes,
                 static_cast<unsigned long long>(
                     server_backpressure.responses_drained),
                 server_backpressure.slow_frames);
    return 1;
  }
  if (server_backpressure.measured &&
      server_backpressure.evictions_overflow != 1) {
    std::fprintf(stderr,
                 "FATAL: hard-cap overrun did not evict exactly one "
                 "connection (saw %llu)\n",
                 static_cast<unsigned long long>(
                     server_backpressure.evictions_overflow));
    return 1;
  }

  PrintResults(results, args, effective_threads, speedup, memory, overlap,
               routing, dynamic_workload, wal_durability, server_latency,
               server_backpressure);
  return 0;
}
