// Sharded HABF bench: parallel-vs-serial TPJO construction and sharded
// batch-query throughput (results recorded into BENCH_query.json).
//
// Construction is HABF's dominant cost (paper §IV); the sharded build runs
// S independent TPJO builds on a util/thread_pool.h pool, so on a T-core
// host the expected construction speedup approaches min(S, T). The query
// side measures the shard-grouping ContainsBatch against the unsharded
// native batch loop.
//
// Usage: bench_sharded_build [--keys N] [--shards S] [--threads T]
//                            [--repeats R] [--json]
// Defaults: 200k keys, S = 8, T = hardware threads, 3 repeats, table output.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/filter_interface.h"
#include "core/habf.h"
#include "core/sharded_filter.h"
#include "eval/metrics.h"
#include "util/timer.h"
#include "workload/dataset.h"

namespace habf {
namespace {

struct Args {
  size_t keys = 200000;
  size_t shards = 8;
  size_t threads = 0;  // 0 = hardware concurrency
  int repeats = 3;
  bool json = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--keys") {
      if (const char* v = next()) args.keys = std::strtoull(v, nullptr, 10);
    } else if (arg == "--shards") {
      if (const char* v = next()) args.shards = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      if (const char* v = next()) args.threads = std::strtoull(v, nullptr, 10);
    } else if (arg == "--repeats") {
      if (const char* v = next()) {
        args.repeats = static_cast<int>(std::strtol(v, nullptr, 10));
      }
    } else if (arg == "--json") {
      args.json = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_sharded_build [--keys N] [--shards S] "
                   "[--threads T] [--repeats R] [--json]\n");
      std::exit(1);
    }
  }
  if (args.keys == 0 || args.shards == 0 || args.repeats < 1) {
    std::fprintf(stderr, "bad arguments\n");
    std::exit(1);
  }
  return args;
}

/// Best-of-R wall time of `fn` in nanoseconds (construction benches report
/// the minimum: it is the least noise-contaminated estimate).
template <typename Fn>
uint64_t BestOf(int repeats, Fn&& fn) {
  uint64_t best = ~uint64_t{0};
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.ElapsedNanos());
  }
  return best;
}

struct Result {
  std::string name;
  uint64_t total_ns;
  double ns_per_key;
  double items_per_second;
};

void PrintResults(const std::vector<Result>& results, const Args& args,
                  size_t effective_threads, double speedup) {
  if (args.json) {
    std::printf("{\n  \"context\": {\"keys\": %zu, \"shards\": %zu, "
                "\"threads\": %zu, \"repeats\": %d},\n  \"benchmarks\": [\n",
                args.keys, args.shards, effective_threads, args.repeats);
    for (size_t i = 0; i < results.size(); ++i) {
      std::printf("    {\"name\": \"%s\", \"real_time\": %.1f, "
                  "\"time_unit\": \"ns\", \"ns_per_key\": %.3f, "
                  "\"items_per_second\": %.1f}%s\n",
                  results[i].name.c_str(),
                  static_cast<double>(results[i].total_ns),
                  results[i].ns_per_key, results[i].items_per_second,
                  i + 1 < results.size() ? "," : "");
    }
    std::printf("  ],\n  \"construction_speedup\": %.3f\n}\n", speedup);
    return;
  }
  std::printf("keys=%zu shards=%zu threads=%zu repeats=%d\n", args.keys,
              args.shards, effective_threads, args.repeats);
  for (const Result& r : results) {
    std::printf("%-34s %12.1f ms  %8.1f ns/key  %12.0f keys/s\n",
                r.name.c_str(), static_cast<double>(r.total_ns) / 1e6,
                r.ns_per_key, r.items_per_second);
  }
  std::printf("parallel construction speedup: %.2fx\n", speedup);
}

}  // namespace
}  // namespace habf

int main(int argc, char** argv) {
  using namespace habf;
  const Args args = ParseArgs(argc, argv);

  const unsigned hw = std::thread::hardware_concurrency();
  const size_t effective_threads =
      args.threads != 0 ? args.threads : (hw == 0 ? 1 : hw);

  DatasetOptions data_options;
  data_options.num_positives = args.keys;
  data_options.num_negatives = args.keys;
  data_options.seed = 99;
  const Dataset data = GenerateShallaLike(data_options);

  HabfOptions options;
  options.total_bits = args.keys * 10;

  ShardedBuildOptions serial_sharding;
  serial_sharding.num_shards = args.shards;
  serial_sharding.num_threads = 1;
  ShardedBuildOptions parallel_sharding = serial_sharding;
  parallel_sharding.num_threads = effective_threads;

  std::vector<Result> results;
  const double keys_d = static_cast<double>(args.keys);
  auto record = [&](std::string name, uint64_t ns, double items) {
    results.push_back({std::move(name), ns, static_cast<double>(ns) / items,
                       items / (static_cast<double>(ns) * 1e-9)});
    (void)keys_d;
  };

  // --- construction: unsharded vs sharded-serial vs sharded-parallel ------
  const uint64_t unsharded_ns = BestOf(args.repeats, [&] {
    DoNotOptimizeAway(Habf::Build(data.positives, data.negatives, options));
  });
  record("BM_HabfBuildUnsharded", unsharded_ns, keys_d);

  const uint64_t serial_ns = BestOf(args.repeats, [&] {
    DoNotOptimizeAway(
        BuildShardedHabf(data.positives, data.negatives, options,
                         serial_sharding));
  });
  record("BM_HabfBuildSharded_serial", serial_ns, keys_d);

  const uint64_t parallel_ns = BestOf(args.repeats, [&] {
    DoNotOptimizeAway(
        BuildShardedHabf(data.positives, data.negatives, options,
                         parallel_sharding));
  });
  record("BM_HabfBuildSharded_parallel", parallel_ns, keys_d);

  const double speedup = static_cast<double>(serial_ns) /
                         static_cast<double>(std::max<uint64_t>(parallel_ns, 1));

  // --- query: unsharded native batch vs sharded grouped batch -------------
  const Habf unsharded =
      Habf::Build(data.positives, data.negatives, options);
  const auto sharded = BuildShardedHabf(data.positives, data.negatives,
                                        options, parallel_sharding);

  std::vector<std::string_view> mixed;
  mixed.reserve(2 * args.keys);
  for (size_t i = 0; i < data.positives.size(); ++i) {
    mixed.push_back(data.positives[i]);
    mixed.push_back(data.negatives[i].key);
  }

  constexpr size_t kBatch = 256;
  auto batch_sweep = [&](const auto& filter) {
    std::vector<uint8_t> out(kBatch);
    size_t positives = 0;
    for (size_t base = 0; base < mixed.size(); base += kBatch) {
      const size_t count = std::min(kBatch, mixed.size() - base);
      positives +=
          filter.ContainsBatch(KeySpan(mixed.data() + base, count),
                               out.data());
    }
    DoNotOptimizeAway(positives);
  };

  const double mixed_d = static_cast<double>(mixed.size());
  record("BM_HabfBatchUnsharded",
         BestOf(args.repeats, [&] { batch_sweep(unsharded); }), mixed_d);
  record("BM_HabfBatchSharded",
         BestOf(args.repeats, [&] { batch_sweep(sharded); }), mixed_d);

  // Scalar routing path for reference.
  record("BM_HabfScalarSharded", BestOf(args.repeats, [&] {
           size_t positives = 0;
           for (const auto& key : mixed) {
             positives += sharded.MightContain(key) ? 1 : 0;
           }
           DoNotOptimizeAway(positives);
         }),
         mixed_d);

  PrintResults(results, args, effective_threads, speedup);

  // Sanity: the sharded filter must keep the one-sided guarantee.
  if (CountFalseNegatives(sharded, data.positives) != 0) {
    std::fprintf(stderr, "FATAL: sharded filter dropped a positive key\n");
    return 1;
  }
  return 0;
}
