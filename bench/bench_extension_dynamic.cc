// Extension experiment (not a paper figure; quantifies the dynamic-update
// future-work direction): FPR drift as positive keys are inserted AFTER
// construction via Habf::AddPositive(). Shows (a) the weighted FPR on the
// optimized negative set, (b) the plain FPR on fresh strangers, both as a
// function of the post-build growth fraction, against a Bloom filter
// suffering the same growth.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace habf;
  using namespace habf::bench;
  const BenchScale scale = ScaleFromArgs(argc, argv);

  DatasetOptions dopt;
  dopt.num_positives = scale.shalla_keys;
  dopt.num_negatives = scale.shalla_keys;
  dopt.seed = 171;
  Dataset data = GenerateShallaLike(dopt);
  AssignZipfCosts(&data, 1.0, 3);

  // Budget sized for 30% growth headroom.
  const size_t design_keys = data.positives.size() * 13 / 10;
  const size_t bits = BudgetBits(10.0, design_keys);

  Habf habf = BuildHabf(data, bits, false);
  DoubleHashBloom bloom(data.positives, bits);

  DatasetOptions stranger_opt;
  stranger_opt.num_positives = 1;
  stranger_opt.num_negatives = 50000;
  stranger_opt.seed = 999;
  const Dataset strangers = GenerateShallaLike(stranger_opt);

  TablePrinter table(
      "Extension: FPR drift under post-build insertion (10 bits/key at "
      "+30% design load)");
  table.AddRow({"growth", "HABF wFPR (known neg)", "HABF FPR (strangers)",
                "BF FPR (strangers)", "FNs"});

  const size_t step = data.positives.size() / 10;
  size_t added = 0;
  std::vector<std::string> late;
  for (int pct = 0; pct <= 30; pct += 5) {
    const size_t target = data.positives.size() * pct / 100;
    while (added < target) {
      late.push_back("late-key-" + std::to_string(added));
      habf.AddPositive(late.back());
      bloom.Add(late.back());
      ++added;
    }
    (void)step;

    size_t fn = 0;
    for (const auto& key : late) {
      if (!habf.Contains(key)) ++fn;
    }
    double habf_stranger_fp = 0;
    double bloom_stranger_fp = 0;
    for (const auto& wk : strangers.negatives) {
      habf_stranger_fp += habf.Contains(wk.key) ? 1 : 0;
      bloom_stranger_fp += bloom.MightContain(wk.key) ? 1 : 0;
    }
    table.AddRow(
        {std::to_string(pct) + "%",
         FormatValue(MeasureWeightedFpr(habf, data.negatives)),
         FormatValue(habf_stranger_fp / strangers.negatives.size()),
         FormatValue(bloom_stranger_fp / strangers.negatives.size()),
         std::to_string(fn)});
  }
  table.Print();
  std::printf(
      "\nShape: zero false negatives always; stranger FPR tracks the Bloom\n"
      "filter's load curve; the optimized-negative advantage erodes as new\n"
      "keys re-set freed bits (rebuild to recover it).\n");
  return 0;
}
