// Reproduces Fig. 9 (parameter study on Shalla, uniform costs):
//  (a) weighted FPR vs the space-allocation ratio Δ, and vs k, at 2 MB;
//  (b) weighted FPR vs HashExpressor cell size over the space axis.
// Paper shape: Δ optimal near 0.25; k best at 3-5; cell size 4 wins.

#include "bench_common.h"

namespace habf {
namespace bench {
namespace {

double RunPoint(const Dataset& data, double bpk, double delta, size_t k,
                unsigned cell_bits) {
  HabfOptions options;
  options.total_bits = BudgetBits(bpk, data.positives.size());
  options.delta = delta;
  options.k = k;
  options.cell_bits = cell_bits;
  const Habf filter = Habf::Build(data.positives, data.negatives, options);
  return MeasureWeightedFpr(filter, data.negatives);
}

}  // namespace
}  // namespace bench
}  // namespace habf

int main(int argc, char** argv) {
  using namespace habf;
  using namespace habf::bench;
  const BenchScale scale = ScaleFromArgs(argc, argv);

  DatasetOptions dopt;
  dopt.num_positives = scale.shalla_keys;
  dopt.num_negatives = scale.shalla_keys;
  dopt.seed = 91;
  Dataset data = GenerateShallaLike(dopt);
  AssignZipfCosts(&data, 0.0, 0);

  // 2 MB over 1.491M positives = 11.2 bits/key.
  const double kTwoMbBpk = 11.2;

  {
    TablePrinter table(
        "Fig 9(a): weighted FPR(%) vs Delta (k=3, cell=4, 2MB-equivalent)");
    table.AddRow({"Delta", "weighted FPR(%)"});
    for (double delta : {0.1, 0.2, 0.25, 0.3, 0.5, 0.7, 0.9}) {
      table.AddRow({FormatValue(delta, 2),
                    FormatValue(RunPoint(data, kTwoMbBpk, delta, 3, 4) * 100)});
    }
    table.Print();
    std::printf("\n");
  }
  {
    TablePrinter table(
        "Fig 9(a): weighted FPR(%) vs k (Delta=0.25, cell=5, 2MB-equivalent)");
    table.AddRow({"k", "weighted FPR(%)"});
    for (size_t k = 2; k <= 8; ++k) {
      table.AddRow({std::to_string(k),
                    FormatValue(RunPoint(data, kTwoMbBpk, 0.25, k, 5) * 100)});
    }
    table.Print();
    std::printf("\n");
  }
  {
    TablePrinter table(
        "Fig 9(b): weighted FPR(%) vs cell size over the space axis");
    table.AddRow({"space", "bits/key", "cell=3", "cell=4", "cell=5"});
    for (const SpacePoint& point : ShallaSpaceAxis()) {
      table.AddRow(
          {point.paper_label, FormatValue(point.bits_per_key, 3),
           FormatValue(RunPoint(data, point.bits_per_key, 0.25, 3, 3) * 100),
           FormatValue(RunPoint(data, point.bits_per_key, 0.25, 3, 4) * 100),
           FormatValue(RunPoint(data, point.bits_per_key, 0.25, 3, 5) * 100)});
    }
    table.Print();
  }
  return 0;
}
